package sim

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// randomKernel builds a structurally valid random kernel from a seed:
// the engine must execute anything trace.Validate accepts.
func randomKernel(r *rand.Rand, regions int) *trace.Kernel {
	ops := []isa.Op{
		isa.OpFAdd32, isa.OpFFMA32, isa.OpIAdd32, isa.OpSin32, isa.OpFFMA64,
		isa.OpRcp32, isa.OpLoadGlobal, isa.OpStoreGlobal, isa.OpLoadShared,
		isa.OpStoreShared, isa.OpBranch,
	}
	patterns := []trace.Pattern{trace.PatOwn, trace.PatNeighbor, trace.PatShared, trace.PatRandom}

	n := 1 + r.Intn(8)
	body := make([]trace.Inst, 0, n+1)
	for i := 0; i < n; i++ {
		op := ops[r.Intn(len(ops))]
		in := trace.Inst{
			Op:     op,
			Active: uint8(1 + r.Intn(32)),
			Times:  1 + r.Intn(4),
		}
		if op.IsGlobalMemory() {
			in.Mem = &trace.MemAccess{
				Region:      r.Intn(regions),
				Pattern:     patterns[r.Intn(len(patterns))],
				Lines:       uint8(1 + r.Intn(8)),
				NeighborPct: uint8(r.Intn(101)),
				Chase:       r.Intn(4) == 0,
			}
		}
		body = append(body, in)
	}
	if r.Intn(3) == 0 {
		// Whole-warp barriers only (divergent barriers are malformed).
		body = append(body, trace.Inst{Op: isa.OpBarrier})
	}
	return &trace.Kernel{
		Name:        "fuzz",
		Grid:        1 + r.Intn(64),
		WarpsPerCTA: 1 + r.Intn(8),
		Iters:       1 + r.Intn(3),
		Body:        body,
	}
}

func randomApp(seed int64) *trace.App {
	r := rand.New(rand.NewSource(seed))
	regions := 1 + r.Intn(3)
	app := &trace.App{Name: "fuzz"}
	for i := 0; i < regions; i++ {
		home := trace.HomeFirstTouch
		if r.Intn(2) == 0 {
			home = trace.HomeStriped
		}
		app.Regions = append(app.Regions, trace.Region{
			Name:  "r",
			Bytes: uint64(1+r.Intn(64)) << 20,
			Home:  home,
		})
	}
	launches := 1 + r.Intn(3)
	for i := 0; i < launches; i++ {
		app.Launches = append(app.Launches, trace.Launch{Kernel: randomKernel(r, regions)})
	}
	return app
}

// TestEngineSurvivesRandomKernels is the engine robustness property:
// any structurally valid app completes without panic or hang, with
// internally consistent counters, on a variety of machine shapes.
func TestEngineSurvivesRandomKernels(t *testing.T) {
	configs := []Config{
		MultiGPM(1, BW2x),
		MultiGPM(2, BW1x),
		MultiGPM(4, BW2x),
		func() Config { c := MultiGPM(4, BW2x); c.L2 = L2MemorySide; return c }(),
		func() Config { c := MultiGPM(8, BW1x); c.CTASchedule = ScheduleRoundRobin; return c }(),
		func() Config { c := MultiGPM(4, BW2x); c.Monolithic = true; return c }(),
	}
	f := func(seed int64) bool {
		app := randomApp(seed)
		if err := app.Validate(); err != nil {
			t.Logf("seed %d produced invalid app: %v", seed, err)
			return false
		}
		cfg := configs[int(uint64(seed)%uint64(len(configs)))]
		r, err := Simulate(context.Background(), cfg, app)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		c := &r.Counts
		// Counter consistency invariants.
		if c.Txn[isa.TxnL1ToRF] != r.L1Accesses {
			return false
		}
		if c.Txn[isa.TxnL2ToL1] != r.L1Misses*isa.SectorsPerLine {
			return false
		}
		if r.LocalLineFills+r.RemoteLineFills != r.L2Misses {
			return false
		}
		if c.Cycles == 0 && len(r.Launches) > 0 {
			return false
		}
		for op := range c.Inst {
			if c.Inst[op] > 32*c.WarpInst[op] {
				return false
			}
		}
		// Monolithic and 1-GPM machines never touch a fabric.
		if (cfg.Monolithic || cfg.GPMs == 1) && c.Txn[isa.TxnInterGPM] != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMemorySideL2Conservation(t *testing.T) {
	cfg := MultiGPM(4, BW2x)
	cfg.L2 = L2MemorySide
	k := &trace.Kernel{
		Name: "ms", Grid: 256, WarpsPerCTA: 4, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}},
			{Op: isa.OpIAdd32, Times: 2},
		},
	}
	app := &trace.App{Name: "ms",
		Regions:  []trace.Region{{Name: "r", Bytes: 64 << 20, Home: trace.HomeStriped}},
		Launches: []trace.Launch{{Kernel: k}}}
	r := mustRun(t, cfg, app)
	c := &r.Counts
	if c.Txn[isa.TxnL2ToL1] != r.L1Misses*isa.SectorsPerLine {
		t.Errorf("memory-side: L2->L1 %d != 4x L1 misses %d", c.Txn[isa.TxnL2ToL1], r.L1Misses)
	}
	if c.Txn[isa.TxnDRAMToL2] != r.L2Misses*isa.SectorsPerLine {
		t.Errorf("memory-side: DRAM->L2 %d != 4x L2 misses %d", c.Txn[isa.TxnDRAMToL2], r.L2Misses)
	}
	if c.Txn[isa.TxnInterGPM] == 0 {
		t.Error("memory-side random traffic must cross the fabric")
	}
	// Every remote L1 miss crosses the fabric under memory-side
	// placement, so fabric traffic is at least the remote-fill volume.
	if c.Txn[isa.TxnInterGPM] < r.RemoteLineFills*isa.SectorsPerLine {
		t.Error("memory-side fabric traffic below remote fill volume")
	}
}

func TestMemorySideL2SharesCacheAcrossModules(t *testing.T) {
	// Under memory-side placement, all modules' accesses to the same
	// data warm ONE home L2, so a broadcast working set larger than one
	// L2 but smaller than the aggregate still hits; module-side L2s
	// each keep their own copy (also hits, but with duplicated
	// capacity). The observable invariant: memory-side must not have a
	// LOWER aggregate L2 hit rate for striped broadcast reads.
	k := &trace.Kernel{
		Name: "bc", Grid: 128, WarpsPerCTA: 4, Iters: 8,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatShared}},
		},
	}
	newApp := func() *trace.App {
		return &trace.App{Name: "bc",
			Regions:  []trace.Region{{Name: "tbl", Bytes: 6 << 20, Home: trace.HomeStriped}},
			Launches: []trace.Launch{{Kernel: k, Count: 3}}}
	}
	moduleSide := mustRun(t, MultiGPM(4, BW2x), newApp())
	msCfg := MultiGPM(4, BW2x)
	msCfg.L2 = L2MemorySide
	memorySide := mustRun(t, msCfg, newApp())
	if memorySide.L2HitRate()+0.05 < moduleSide.L2HitRate() {
		t.Errorf("memory-side L2 hit rate %.2f should not trail module-side %.2f badly",
			memorySide.L2HitRate(), moduleSide.L2HitRate())
	}
}

func TestRoundRobinSchedulingCoversAllCTAs(t *testing.T) {
	cfg := MultiGPM(4, BW2x)
	cfg.CTASchedule = ScheduleRoundRobin
	k := &trace.Kernel{
		Name: "rr", Grid: 101, WarpsPerCTA: 2, Iters: 2, // odd grid exercises stride edges
		Body: []trace.Inst{{Op: isa.OpFFMA32, Times: 4}},
	}
	app := &trace.App{Name: "rr", Launches: []trace.Launch{{Kernel: k}}}
	r := mustRun(t, cfg, app)
	want := uint64(101 * 2 * 2 * 4)
	if got := r.Counts.WarpInst[isa.OpFFMA32]; got != want {
		t.Errorf("round-robin lost CTAs: %d warp insts, want %d", got, want)
	}
}

func TestRoundRobinDestroysLocality(t *testing.T) {
	app := streamApp(256, 4, 8, 64<<20)
	contiguous := mustRun(t, MultiGPM(4, BW2x), app)

	rrCfg := MultiGPM(4, BW2x)
	rrCfg.CTASchedule = ScheduleRoundRobin
	rr := mustRun(t, rrCfg, streamApp(256, 4, 8, 64<<20))

	// Contiguous CTAs + first touch keep partitioned streams local;
	// round-robin re-runs the same kernel with pages homed by
	// different-than-streaming owners across launches... With a single
	// launch both first-touch fine-grained; the difference shows in
	// neighbor/partition adjacency. At minimum, round-robin must not
	// *reduce* remote traffic.
	if rr.RemoteFillFraction()+1e-9 < contiguous.RemoteFillFraction() {
		t.Errorf("round-robin should not be more local: %.3f < %.3f",
			rr.RemoteFillFraction(), contiguous.RemoteFillFraction())
	}
}
