package sim

import (
	"context"

	"testing"
	"testing/quick"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

func mustRun(t *testing.T, cfg Config, app *trace.App) *Result {
	t.Helper()
	r, err := Simulate(context.Background(), cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigDefaults(t *testing.T) {
	cfg := BaseGPM()
	if cfg.GPMs != 1 || cfg.SMsPerGPM != 16 {
		t.Error("basic GPM is 16 SMs")
	}
	if cfg.L1PerSMBytes != 32<<10 || cfg.L2PerGPMBytes != 2<<20 {
		t.Error("basic GPM caches: 32 KB L1, 2 MB L2")
	}
	if cfg.DRAMBytesPerCycle != 256 {
		t.Error("basic GPM HBM: 256 GB/s at 1 GHz")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIVBandwidths(t *testing.T) {
	// Table IV: 128/256/512 GB/s per GPM against 256 GB/s DRAM.
	cases := []struct {
		bw     BWSetting
		want   float64
		domain Domain
	}{
		{BW1x, 128, DomainOnBoard},
		{BW2x, 256, DomainOnPackage},
		{BW4x, 512, DomainOnPackage},
	}
	for _, c := range cases {
		cfg := MultiGPM(4, c.bw)
		if got := cfg.InterGPMBytesPerCycle(); got != c.want {
			t.Errorf("%v inter-GPM BW = %g, want %g", c.bw, got, c.want)
		}
		if cfg.Domain != c.domain {
			t.Errorf("%v default domain = %v, want %v", c.bw, cfg.Domain, c.domain)
		}
	}
}

func TestTableIIIScaling(t *testing.T) {
	for _, n := range TableIIIGPMCounts {
		cfg := MultiGPM(n, BW2x)
		if cfg.TotalSMs() != 16*n {
			t.Errorf("%d-GPM SMs = %d, want %d", n, cfg.TotalSMs(), 16*n)
		}
	}
}

func TestConfigValidateRejections(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.GPMs = 0 },
		func(c *Config) { c.SMsPerGPM = -1 },
		func(c *Config) { c.L1PerSMBytes = 0 },
		func(c *Config) { c.DRAMBytesPerCycle = 0 },
	} {
		cfg := BaseGPM()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	app := streamApp(128, 4, 8, 32<<20)
	r1 := mustRun(t, MultiGPM(4, BW2x), app)
	r2 := mustRun(t, MultiGPM(4, BW2x), app)
	if r1.Counts != r2.Counts {
		t.Error("identical runs must produce identical counts")
	}
	if r1.L1Misses != r2.L1Misses || r1.RemoteLineFills != r2.RemoteLineFills {
		t.Error("identical runs must produce identical cache behaviour")
	}
}

func TestInstructionAccounting(t *testing.T) {
	k := &trace.Kernel{
		Name: "acct", Grid: 8, WarpsPerCTA: 2, Iters: 3,
		Body: []trace.Inst{
			{Op: isa.OpFFMA32, Times: 5},
			{Op: isa.OpIAdd32, Active: 16, Times: 2},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
		},
	}
	app := &trace.App{Name: "acct", Regions: []trace.Region{{Name: "r", Bytes: 1 << 20}},
		Launches: []trace.Launch{{Kernel: k}}}
	r := mustRun(t, BaseGPM(), app)

	warps := uint64(8 * 2)
	iters := uint64(3)
	if got := r.Counts.WarpInst[isa.OpFFMA32]; got != warps*iters*5 {
		t.Errorf("FFMA32 warp insts = %d, want %d", got, warps*iters*5)
	}
	if got := r.Counts.Inst[isa.OpFFMA32]; got != warps*iters*5*32 {
		t.Errorf("FFMA32 thread insts = %d, want %d", got, warps*iters*5*32)
	}
	// Divergent IADD: 16 active threads.
	if got := r.Counts.Inst[isa.OpIAdd32]; got != warps*iters*2*16 {
		t.Errorf("divergent IADD32 thread insts = %d, want %d", got, warps*iters*2*16)
	}
	if got := r.Counts.WarpInst[isa.OpLoadGlobal]; got != warps*iters {
		t.Errorf("loads = %d, want %d", got, warps*iters)
	}
}

func TestTransactionConservation(t *testing.T) {
	// Every L1 access delivers one L1->RF line; every L1 miss moves 4
	// L2->L1 sectors; every L2 miss moves 4 DRAM->L2 sectors.
	app := streamApp(128, 4, 8, 32<<20)
	for _, n := range []int{1, 4} {
		r := mustRun(t, MultiGPM(n, BW2x), app)
		c := &r.Counts
		if c.Txn[isa.TxnL1ToRF] != r.L1Accesses {
			t.Errorf("%d-GPM: L1->RF %d != L1 accesses %d", n, c.Txn[isa.TxnL1ToRF], r.L1Accesses)
		}
		if c.Txn[isa.TxnL2ToL1] != r.L1Misses*isa.SectorsPerLine {
			t.Errorf("%d-GPM: L2->L1 %d != 4x L1 misses %d", n, c.Txn[isa.TxnL2ToL1], r.L1Misses)
		}
		if c.Txn[isa.TxnDRAMToL2] != r.L2Misses*isa.SectorsPerLine {
			t.Errorf("%d-GPM: DRAM->L2 %d != 4x L2 misses %d", n, c.Txn[isa.TxnDRAMToL2], r.L2Misses)
		}
		if r.L2Accesses != r.L1Misses {
			t.Errorf("%d-GPM: every L1 miss visits L2 exactly once", n)
		}
		if r.LocalLineFills+r.RemoteLineFills != r.L2Misses {
			t.Errorf("%d-GPM: fills %d+%d != L2 misses %d",
				n, r.LocalLineFills, r.RemoteLineFills, r.L2Misses)
		}
	}
}

func TestRemoteTrafficChargesInterGPMHops(t *testing.T) {
	k := &trace.Kernel{
		Name: "rand", Grid: 256, WarpsPerCTA: 4, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}},
		},
	}
	app := &trace.App{Name: "rand",
		Regions:  []trace.Region{{Name: "r", Bytes: 128 << 20, Home: trace.HomeStriped}},
		Launches: []trace.Launch{{Kernel: k}}}
	r := mustRun(t, MultiGPM(8, BW2x), app)
	// Hops on an 8-ring average 2+: inter-GPM sectors must exceed
	// 4 * remote fills (one hop each) strictly.
	minSectors := r.RemoteLineFills * isa.SectorsPerLine
	if got := r.Counts.Txn[isa.TxnInterGPM]; got <= minSectors {
		t.Errorf("multi-hop ring should charge >1 hop per remote fill: %d sectors for %d fills",
			got, r.RemoteLineFills)
	}
	if r.Counts.Txn[isa.TxnSwitch] != 0 {
		t.Error("ring topology must not charge switch traversals")
	}
}

func TestSwitchTopologyChargesSwitch(t *testing.T) {
	k := &trace.Kernel{
		Name: "rand", Grid: 128, WarpsPerCTA: 4, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}},
		},
	}
	app := &trace.App{Name: "rand",
		Regions:  []trace.Region{{Name: "r", Bytes: 64 << 20, Home: trace.HomeStriped}},
		Launches: []trace.Launch{{Kernel: k}}}
	cfg := MultiGPM(8, BW1x)
	cfg.Topology = 1 // interconnect.TopologySwitch
	r := mustRun(t, cfg, app)
	if r.Counts.Txn[isa.TxnSwitch] == 0 {
		t.Error("switch topology must charge switch traversals")
	}
	// Every remote fill crosses exactly two links and one switch.
	wantLinks := r.RemoteLineFills * isa.SectorsPerLine * 2
	if got := r.Counts.Txn[isa.TxnInterGPM]; got != wantLinks {
		t.Errorf("switch link sectors = %d, want %d", got, wantLinks)
	}
	if got := r.Counts.Txn[isa.TxnSwitch]; got != r.RemoteLineFills*isa.SectorsPerLine {
		t.Errorf("switch sectors = %d, want %d", got, r.RemoteLineFills*isa.SectorsPerLine)
	}
}

func TestBarrierSynchronizesCTA(t *testing.T) {
	// A kernel whose warps barrier every iteration must complete with
	// consistent counts (and must not deadlock).
	k := &trace.Kernel{
		Name: "bar", Grid: 32, WarpsPerCTA: 8, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpFFMA32, Times: 3},
			{Op: isa.OpBarrier},
			{Op: isa.OpIAdd32},
		},
	}
	app := &trace.App{Name: "bar", Launches: []trace.Launch{{Kernel: k}}}
	r := mustRun(t, BaseGPM(), app)
	want := uint64(32 * 8 * 4)
	if got := r.Counts.WarpInst[isa.OpBarrier]; got != want {
		t.Errorf("barriers executed = %d, want %d", got, want)
	}
	if got := r.Counts.WarpInst[isa.OpIAdd32]; got != want {
		t.Errorf("post-barrier instructions = %d, want %d", got, want)
	}
}

func TestSoftwareCoherenceInvalidatesL1(t *testing.T) {
	// The same kernel launched twice: with L1s flushed at the boundary
	// (software coherence), the second launch's small working set must
	// miss L1 again, so misses are at least 2x a single launch's.
	k := &trace.Kernel{
		Name: "reuse", Grid: 64, WarpsPerCTA: 2, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
		},
	}
	once := &trace.App{Name: "once", Regions: []trace.Region{{Name: "r", Bytes: 1 << 20}},
		Launches: []trace.Launch{{Kernel: k}}}
	twice := &trace.App{Name: "twice", Regions: []trace.Region{{Name: "r", Bytes: 1 << 20}},
		Launches: []trace.Launch{{Kernel: k, Count: 2}}}
	r1 := mustRun(t, BaseGPM(), once)
	r2 := mustRun(t, BaseGPM(), twice)
	if r2.L1Misses < 2*r1.L1Misses {
		t.Errorf("L1 must be cold after a kernel boundary: %d misses for two launches vs %d for one",
			r2.L1Misses, r1.L1Misses)
	}
}

func TestFirstTouchLocalizesOwnPartitions(t *testing.T) {
	app := streamApp(256, 4, 8, 64<<20)
	for _, n := range []int{2, 8} {
		r := mustRun(t, MultiGPM(n, BW2x), app)
		if frac := r.RemoteFillFraction(); frac > 0.25 {
			t.Errorf("%d-GPM partitioned streaming should be mostly local, remote=%.2f", n, frac)
		}
	}
}

func TestStripedHomesSpreadPages(t *testing.T) {
	k := &trace.Kernel{
		Name: "sh", Grid: 64, WarpsPerCTA: 4, Iters: 2,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatShared}},
		},
	}
	app := &trace.App{Name: "sh",
		Regions:  []trace.Region{{Name: "bcast", Bytes: 8 << 20, Home: trace.HomeStriped}},
		Launches: []trace.Launch{{Kernel: k}}}
	r := mustRun(t, MultiGPM(4, BW2x), app)
	// Broadcast reads over striped pages: roughly 3/4 of cold fills are
	// remote on 4 GPMs.
	if frac := r.RemoteFillFraction(); frac < 0.4 {
		t.Errorf("striped broadcast data should be mostly remote, got %.2f", frac)
	}
}

func TestStallAccountingBounds(t *testing.T) {
	app := streamApp(128, 4, 8, 32<<20)
	r := mustRun(t, MultiGPM(2, BW2x), app)
	var launchCycles float64
	for i := range r.Launches {
		launchCycles += r.Launches[i].Duration()
	}
	maxStalls := launchCycles * float64(r.Counts.SMCount)
	if float64(r.Counts.StallCycles) > maxStalls {
		t.Errorf("stalls %d exceed total SM-cycles %.0f", r.Counts.StallCycles, maxStalls)
	}
}

func TestHostGapSeparatesLaunches(t *testing.T) {
	k := &trace.Kernel{
		Name: "tiny", Grid: 16, WarpsPerCTA: 1, Iters: 1,
		Body: []trace.Inst{{Op: isa.OpIAdd32}},
	}
	gap := 50000.0
	app := &trace.App{Name: "tiny", HostGapCycles: gap,
		Launches: []trace.Launch{{Kernel: k, Count: 3}}}
	r := mustRun(t, BaseGPM(), app)
	if len(r.Launches) != 3 {
		t.Fatalf("launches = %d, want 3", len(r.Launches))
	}
	for i := 1; i < len(r.Launches); i++ {
		between := r.Launches[i].Start - r.Launches[i-1].End
		if between < gap {
			t.Errorf("gap between launches %d,%d = %.0f, want >= %.0f", i-1, i, between, gap)
		}
	}
	if float64(r.Counts.Cycles) < 3*gap {
		t.Error("total time must include host gaps")
	}
}

func TestMoreGPMsNeverSlower(t *testing.T) {
	// Property over GPM counts: for a well-partitioned streaming app,
	// time is non-increasing in module count (allowing 5% noise).
	app := streamApp(512, 4, 8, 64<<20)
	var prev float64
	for i, n := range []int{1, 2, 4, 8} {
		r := mustRun(t, MultiGPM(n, BW2x), app)
		if i > 0 && r.Cycles() > prev*1.05 {
			t.Errorf("%d GPMs slower than %d: %.0f vs %.0f", n, n/2, r.Cycles(), prev)
		}
		prev = r.Cycles()
	}
}

func TestBandwidthSettingOrdering(t *testing.T) {
	// A NUMA-heavy workload must not run slower with more inter-GPM
	// bandwidth.
	k := &trace.Kernel{
		Name: "numa", Grid: 256, WarpsPerCTA: 8, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}},
			{Op: isa.OpFFMA32, Times: 2},
		},
	}
	app := &trace.App{Name: "numa",
		Regions:  []trace.Region{{Name: "r", Bytes: 256 << 20, Home: trace.HomeStriped}},
		Launches: []trace.Launch{{Kernel: k}}}
	t1 := mustRun(t, MultiGPM(8, BW1x), app).Cycles()
	t2 := mustRun(t, MultiGPM(8, BW2x), app).Cycles()
	t4 := mustRun(t, MultiGPM(8, BW4x), app).Cycles()
	if t2 > t1*1.02 || t4 > t2*1.02 {
		t.Errorf("bandwidth must help NUMA traffic: %g, %g, %g", t1, t2, t4)
	}
	if t4 >= t1 {
		t.Errorf("4x bandwidth should clearly beat 1x on NUMA-bound work: %g vs %g", t4, t1)
	}
}

func TestInvalidAppRejected(t *testing.T) {
	app := &trace.App{Name: "bad"}
	if _, err := Simulate(context.Background(), BaseGPM(), app); err == nil {
		t.Error("empty app must be rejected")
	}
}

func TestBWSettingDomainStrings(t *testing.T) {
	if BW1x.String() != "1x-BW" || BW4x.String() != "4x-BW" {
		t.Error("bandwidth setting names wrong")
	}
	if DomainOnBoard.String() != "on-board" || DomainOnPackage.String() != "on-package" {
		t.Error("domain names wrong")
	}
	cfg := MultiGPM(4, BW2x)
	if cfg.Name() == "" || BaseGPM().Name() != "1-GPM" {
		t.Error("config naming wrong")
	}
	cfg.Monolithic = true
	if cfg.Name() != "monolithic-4x" {
		t.Errorf("monolithic name = %q", cfg.Name())
	}
}

func TestAddressGenerationInRegionProperty(t *testing.T) {
	// Property: generated addresses always fall inside their region.
	f := func(seed uint32, pat uint8, lines uint8) bool {
		app := &trace.App{Name: "p",
			Regions: []trace.Region{{Name: "r", Bytes: 4 << 20}},
			Launches: []trace.Launch{{Kernel: &trace.Kernel{
				Name: "k", Grid: 4, WarpsPerCTA: 2,
				Body: []trace.Inst{{Op: isa.OpIAdd32}},
			}}}}
		g, err := newGPU(MultiGPM(2, BW2x), app, simOptions{})
		if err != nil {
			return false
		}
		eng := &launchEngine{gpu: g, kernel: app.Launches[0].Kernel}
		w := &warpState{
			eng:       eng,
			id:        int(seed % 8),
			accessSeq: seed,
			streamOff: []uint32{seed / 3},
		}
		m := &trace.MemAccess{
			Region:      0,
			Pattern:     trace.Pattern(pat % 4),
			Lines:       lines%8 + 1,
			NeighborPct: 30,
		}
		base := g.regionBase[0]
		limit := base + g.regionLines[0]*isa.LineBytes
		for l := 0; l < int(m.Lines); l++ {
			addr := g.address(m, w, l)
			if addr < base || addr >= limit {
				return false
			}
			if addr%isa.LineBytes != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
