package sim

import (
	"context"
	"errors"
	"fmt"

	"gpujoule/internal/obs"
	"gpujoule/internal/trace"
)

// ErrDeadlock reports that a kernel blocked every runnable warp at CTA
// barriers — a malformed kernel (a barrier under divergent retirement),
// not a slow one. Simulate wraps it with the kernel's name; callers
// running sweeps branch with errors.Is(err, ErrDeadlock) to fail the
// one run instead of killing a whole sweep worker.
var ErrDeadlock = errors.New("deadlock: all runnable warps blocked at barriers")

// Option configures one Simulate call. Options are additive: the
// zero-option call is the fast path and produces output identical to
// the pre-options simulator.
type Option func(*simOptions)

// simOptions collects the resolved option set.
type simOptions struct {
	counters       bool
	trace          bool
	sampleInterval float64
	gpmParallel    int
	budget         *Budget
}

// defaultTraceSampleCycles is the sampler interval WithTrace installs
// when the caller did not pick one: fine enough to resolve link
// saturation within a launch, coarse enough to stay a rounding error in
// simulation cost. Fixed (not derived from run length) so traced runs
// stay deterministic and memoizable.
const defaultTraceSampleCycles = 5000

// WithCounters enables the observability layer: the returned Result
// carries a Counters snapshot with per-GPM instruction/stall/cache
// counters, the local-vs-remote fill split, and per-link fabric bytes
// and queueing delay. Collection is deterministic (the simulator is
// single-threaded per run) and costs one predictable branch per event
// when enabled; without this option Result.Counters is nil and the
// simulation path is untouched.
func WithCounters() Option {
	return func(o *simOptions) { o.counters = true }
}

// WithSampler additionally records a coarse time series: one
// obs.Sample (active warps, pending CTAs, cumulative instructions)
// every interval cycles, quantized to the simulator's epoch length.
// WithSampler implies WithCounters. A non-positive interval disables
// sampling.
func WithSampler(interval float64) Option {
	return func(o *simOptions) {
		if interval > 0 {
			o.counters = true
			o.sampleInterval = interval
		}
	}
}

// WithTrace additionally records a timeline: kernel-launch windows,
// per-GPM busy/stall phases per launch, and link-saturation episodes
// derived from the sampler's time series. The timeline is attached to
// Result.Trace (cycle-exact, schema-versioned) and renders to the
// Chrome trace_event format via obs.Trace.WriteChrome for
// chrome://tracing / Perfetto. WithTrace implies WithCounters and, if
// no WithSampler interval was chosen, installs a default sampling
// interval. Without this option Result.Trace is nil and output is
// byte-identical to an untraced run.
func WithTrace() Option {
	return func(o *simOptions) {
		o.counters = true
		o.trace = true
	}
}

// WithGPMParallel runs each launch's GPMs on up to n parallel lanes
// within every epoch window, letting one simulation use more than one
// core. Results are bit-identical to the sequential engine at every
// lane count (the per-GPM lanes synchronize so that shared-resource
// operations keep their sequential order; see DESIGN.md "Performance
// engineering"), so the option does not participate in Config.SimKey
// and memoized results remain valid across lane counts. The lane count
// is clamped to the GPM count per launch; n <= 1 selects the plain
// sequential engine. Speedup is workload-dependent: lanes overlap each
// GPM's private work (warp scheduling, L1/module-side-L2 traffic) and
// serialize at shared resources (page homing, DRAM stacks, fabric).
func WithGPMParallel(n int) Option {
	return func(o *simOptions) { o.gpmParallel = n }
}

// WithParallelBudget makes extra per-GPM lanes draw from a shared
// Budget instead of being granted unconditionally: each launch takes
// up to lanes-1 tokens (non-blocking) and returns them when the launch
// ends. Callers running many simulations concurrently (the runner, the
// service) share one budget sized against GOMAXPROCS so intra-run
// parallelism composes with the worker pool instead of oversubscribing
// it. A nil budget means unbudgeted. No effect without WithGPMParallel.
func WithParallelBudget(b *Budget) Option {
	return func(o *simOptions) { o.budget = b }
}

// Simulate runs the whole application on the configured GPU and
// returns the result. It is the single entry point of the simulator:
// one call validates the configuration and the application, builds the
// GPU, executes every kernel launch in order, and aggregates the
// counts the energy model consumes. The context is checked between
// kernel launches, so a cancelled grid abandons a long multi-launch
// run promptly; a nil ctx means context.Background().
//
// Simulate is a pure function of (cfg, app, opts): two calls with
// equal arguments return identical results, which is what lets the run
// engine (internal/runner) memoize simulations by canonical key.
func Simulate(ctx context.Context, cfg Config, app *trace.App, opts ...Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o simOptions
	for _, f := range opts {
		f(&o)
	}
	if o.trace && o.sampleInterval <= 0 {
		o.sampleInterval = defaultTraceSampleCycles
	}
	g, err := newGPU(cfg, app, o)
	if err != nil {
		return nil, err
	}
	return g.runAll(ctx)
}

// finishCounters freezes the collector into the result's Counters
// snapshot: fabric link stats become obs.LinkCounters (utilization
// normalized over the run's end-to-end cycles), and each module's
// DRAM/L2 bandwidth-resource counters are folded into its GPMCounters.
func (g *GPU) finishCounters() {
	horizon := float64(g.res.Counts.Cycles)
	for _, gpm := range g.gpms {
		gc := &g.col.GPMs[gpm.id]
		gc.DRAMBytes = gpm.dram.BytesServed
		gc.DRAMQueueCycles = gpm.dram.QueueCycles
		gc.L2Bytes = gpm.l2bw.BytesServed
		gc.L2QueueCycles = gpm.l2bw.QueueCycles
	}
	var links []obs.LinkCounters
	if g.fabric != nil {
		for _, ls := range g.fabric.LinkStats() {
			util := 0.0
			if horizon > 0 {
				util = ls.BusyCycles / horizon
				if util > 1 {
					util = 1
				}
			}
			links = append(links, obs.LinkCounters{
				Link:        ls.Name,
				Bytes:       ls.Bytes,
				BusyCycles:  ls.BusyCycles,
				QueueCycles: ls.QueueCycles,
				Utilization: util,
			})
		}
	}
	g.res.Counters = g.col.Snapshot(links)
	if g.col.TraceEnabled() {
		g.res.Trace = g.col.TraceSnapshot(g.cfg.Clock())
	}
}

// cancelled wraps a context error into the simulator's error space.
func cancelled(ctx context.Context) error {
	return fmt.Errorf("sim: cancelled: %w", context.Cause(ctx))
}
