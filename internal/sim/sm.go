package sim

import (
	"fmt"
	"math"

	"gpujoule/internal/isa"
	"gpujoule/internal/memsys"
	"gpujoule/internal/obs"
	"gpujoule/internal/trace"
)

// warpState is the execution context of one resident 32-thread warp.
type warpState struct {
	eng *launchEngine
	cta *ctaState

	// id is the warp's kernel-global identity (cta*warpsPerCTA + lane).
	id int

	// pos is the warp's live index in sm.warps. It is the scheduler's
	// tie-break key and the warp's identity in the SM's ready queue (see
	// readyQueue), kept exact across the swap-removes retire performs.
	pos int
	// resident marks the warp as allocated to an SM and unretired.
	resident bool

	// readyAt is the earliest time the warp may issue its next
	// instruction.
	readyAt float64
	// blocked marks a warp waiting at a CTA barrier.
	blocked bool

	// Program position: body index, remaining repeats of the current
	// instruction, and the body iteration count.
	bodyIdx int
	repLeft int
	iter    int

	// streamOff[r] counts the warp's accesses to region r, driving
	// streaming address generation.
	streamOff []uint32
	// accessSeq counts all memory accesses, seeding per-access hashes.
	accessSeq uint32
}

// ctaState tracks one resident CTA's warps and barrier.
type ctaState struct {
	id        int
	warpsLeft int
	arrived   int
	warps     []*warpState

	// arena is the single backing array for the CTA's per-warp
	// streamOff counters; each warp's slice is a window into it. It is
	// reused (and re-zeroed) across the CTA slot's lifetimes, so
	// steady-state launches allocate nothing.
	arena []uint32
}

// smState is one streaming multiprocessor.
//
// Field order is deliberate: the per-issue hot set — clock, busy, the
// cached prog/col pointers, the issueCnt and warps headers, and the
// ready-queue header — sits first so the scheduler's inner loop works
// out of the struct's first two cache lines; refill/retire-only state
// (free lists, CTA count) trails. The struct's spread across three
// lines was a measured per-issue load cost before the reorder.
type smState struct {
	clock float64
	busy  float64 // issue-occupied cycles within the current launch

	// prog and col cache eng.prog and eng.gpu.col for the current launch
	// (set by runLaunch): the issue path reads both every instruction,
	// and the cached copies replace two dependent loads through the
	// engine and GPU structs with single loads from this already-hot
	// struct.
	prog *launchProg
	col  *obs.Collector

	// issueCnt aliases the GPM's per-body-index issue counters for the
	// current launch (see gpmState.issueCnt), cached here so the
	// per-issue increment needs one load, not two dependent ones.
	issueCnt []uint64

	warps []*warpState

	// rq indexes the unblocked resident warps by (readyAt, pos) so the
	// scheduler's oldest-ready-first pick is O(log W) per instruction.
	rq readyQueue

	// shard is gpm's counter shard (&gpm.shard), cached here so the
	// per-issue counter writes need one load, not two dependent ones.
	shard *gpmShard

	gpm *gpmState
	l1  *memsys.Cache

	ctas int // resident CTA count

	// freeCTAs and freeWarps recycle launch state: a CTA whose last warp
	// retires returns its ctaState and warpStates here, and refill draws
	// from the pools before allocating.
	freeCTAs  []*ctaState
	freeWarps []*warpState
}

// beginLaunch resets per-launch SM state.
func (sm *smState) beginLaunch(start float64) {
	sm.clock = start
	sm.busy = 0
	sm.warps = sm.warps[:0]
	sm.ctas = 0
	sm.rq.reset()
}

// refill pulls CTAs from the GPM queue until the residency limit is
// reached or the queue empties. It reports whether any warps are now
// resident. CTA and warp state comes from the SM's free lists and each
// CTA's streamOff counters share one backing arena, so steady-state
// launches allocate nothing.
func (sm *smState) refill(eng *launchEngine) bool {
	max := eng.gpu.cfg.maxCTAs()
	k := eng.kernel
	nRegions := len(eng.gpu.app.Regions)
	for sm.ctas < max {
		ctaID, ok := sm.gpm.takeCTA()
		if !ok {
			break
		}
		var cta *ctaState
		if n := len(sm.freeCTAs); n > 0 {
			cta = sm.freeCTAs[n-1]
			sm.freeCTAs = sm.freeCTAs[:n-1]
			cta.id = ctaID
			cta.warpsLeft = k.WarpsPerCTA
			cta.arrived = 0
		} else {
			cta = &ctaState{id: ctaID, warpsLeft: k.WarpsPerCTA}
		}
		need := k.WarpsPerCTA * nRegions
		if cap(cta.arena) < need {
			cta.arena = make([]uint32, need)
		} else {
			cta.arena = cta.arena[:need]
			clear(cta.arena)
		}
		for wi := 0; wi < k.WarpsPerCTA; wi++ {
			var w *warpState
			if n := len(sm.freeWarps); n > 0 {
				w = sm.freeWarps[n-1]
				sm.freeWarps = sm.freeWarps[:n-1]
			} else {
				w = new(warpState)
			}
			*w = warpState{
				eng:       eng,
				cta:       cta,
				id:        ctaID*k.WarpsPerCTA + wi,
				pos:       len(sm.warps),
				resident:  true,
				readyAt:   sm.clock,
				repLeft:   int(eng.prog.body[0].repeat),
				streamOff: cta.arena[wi*nRegions : (wi+1)*nRegions],
			}
			cta.warps = append(cta.warps, w)
			sm.warps = append(sm.warps, w)
			sm.rq.push(w.pos, w.readyAt)
		}
		sm.ctas++
		sm.shard.activeWarps += k.WarpsPerCTA
	}
	return len(sm.warps) > 0
}

// advance runs the SM's event loop until its clock reaches `until` or
// it runs out of work. It reports whether any instruction issued. A
// malformed kernel that blocks every resident warp at a barrier
// (barrier under divergent retirement) returns an error wrapping
// ErrDeadlock rather than hanging.
func (sm *smState) advance(until float64, eng *launchEngine) (bool, error) {
	progressed := false
	// Epoch-exit compares run in the bit domain: non-negative times
	// order exactly as their IEEE-754 bit patterns (see readyQueue), so
	// the per-pick test needs no float reconstruction.
	untilKey := math.Float64bits(until)
	for {
		if len(sm.warps) == 0 {
			if !sm.refill(eng) {
				if sm.clock < until {
					sm.clock = until
				}
				return progressed, nil
			}
		}
		// Oldest-ready-first selection among unblocked warps: the queue
		// root minimizes (readyAt, pos), exactly the warp the historical
		// linear scan picked. The root's key is read from the tree root
		// so the frequent nothing-ready-this-epoch exit touches no warp
		// struct.
		if sm.rq.len() == 0 {
			return progressed, fmt.Errorf("sim: SM deadlock in kernel %q: all %d warps blocked at barrier: %w",
				eng.kernel.Name, len(sm.warps), ErrDeadlock)
		}
		rootKey := sm.rq.rootKey()
		if rootKey >= untilKey {
			if sm.clock < until {
				sm.clock = until
			}
			return progressed, nil
		}
		w := sm.warps[sm.rq.rootPos()]
		if minReady := math.Float64frombits(rootKey); sm.clock < minReady {
			sm.clock = minReady
		}
		sm.issue(w, eng)
		progressed = true
		// Re-establish w's queue membership: a still-runnable warp
		// re-keys in place with its grown readyAt; a barrier block
		// leaves the queue and a retirement was already removed by
		// retire. (When retire recycles w's CTA and a refill reuses
		// this struct for a fresh warp, the fresh warp was pushed with
		// its correct key, so the fix below is a no-op.)
		if w.resident {
			if w.blocked {
				if sm.rq.queued(w.pos) {
					sm.rq.remove(w.pos)
				}
			} else {
				sm.rq.fixIfQueued(w.pos, w.readyAt)
			}
		}
	}
}

// issue executes w's next instruction at sm.clock. The per-instruction
// constants (issue cycles, latency, active threads, op class) come
// from the launch's predigested program rather than per-issue table
// lookups; the clock arithmetic matches the unhoisted code term for
// term, float addition order included.
func (sm *smState) issue(w *warpState, eng *launchEngine) {
	prog := sm.prog
	rec := &prog.body[w.bodyIdx]

	// One increment covers every per-op counter: the op, thread count,
	// and fixed transaction counts of a body entry are launch constants,
	// so runLaunch recovers WarpInst/Inst/Txn/L1-access totals from these
	// per-entry issue counts exactly. Only the Collector below needs
	// incremental updates (its counters are sampled mid-launch).
	sm.issueCnt[w.bodyIdx]++
	if col := sm.col; col != nil {
		gc := &col.GPMs[sm.gpm.id]
		gc.WarpInstructions++
		gc.ThreadInstructions += rec.active
		gc.Inst[rec.op] += rec.active
	}

	occ := rec.occ

	switch rec.kind {
	case recSimple:
		w.readyAt = sm.clock + occ + rec.lat

	case recGlobal:
		done := eng.gpu.access(sm, sm.clock+occ, rec.mem, w, rec.store)
		w.accessSeq++
		w.streamOff[rec.mem.region]++
		if rec.store {
			// Stores retire through a write buffer without blocking.
			w.readyAt = sm.clock + occ + rec.lat
		} else {
			w.readyAt = done
		}

	case recShared:
		if col := sm.col; col != nil {
			col.GPMs[sm.gpm.id].Txn[isa.TxnShmToRF]++
		}
		w.readyAt = sm.clock + occ + rec.lat

	case recBarrier:
		cta := w.cta
		cta.arrived++
		if cta.arrived >= cta.warpsLeft {
			// Last arrival releases everyone at the current time.
			cta.arrived = 0
			for _, sib := range cta.warps {
				// A sibling that retired while blocked (barrier on its
				// last instruction) is skipped: the historical scan
				// could never select it because retire had already
				// removed it from sm.warps.
				if sib.blocked && sib.resident {
					sib.blocked = false
					sib.readyAt = sm.clock
					sm.rq.push(sib.pos, sib.readyAt)
				}
			}
			w.readyAt = sm.clock + occ
		} else {
			w.blocked = true
			w.readyAt = sm.clock + occ
		}

	case recExit:
		sm.busy += occ
		sm.clock += occ
		sm.retire(w, eng)
		return
	}

	sm.busy += occ
	sm.clock += occ

	// Advance the program position.
	w.repLeft--
	if w.repLeft > 0 {
		return
	}
	w.bodyIdx++
	if w.bodyIdx >= len(prog.body) {
		w.bodyIdx = 0
		w.iter++
		if w.iter >= prog.iters {
			sm.retire(w, eng)
			return
		}
	}
	w.repLeft = int(prog.body[w.bodyIdx].repeat)
}

// retire removes a finished warp, releasing its CTA slot when the last
// sibling finishes.
func (sm *smState) retire(w *warpState, eng *launchEngine) {
	end := w.readyAt
	if sm.clock > end {
		end = sm.clock
	}
	if end > sm.shard.end {
		sm.shard.end = end
	}
	if sm.rq.queued(w.pos) {
		sm.rq.remove(w.pos)
	}
	w.resident = false
	// Swap-remove from sm.warps (the historical order-mutating removal
	// the scheduler's pos tie-break depends on), now O(1) via pos. The
	// moved warp's pos shrinks, so its queue key must be re-established.
	i := w.pos
	last := len(sm.warps) - 1
	moved := sm.warps[last]
	sm.warps[i] = moved
	sm.warps = sm.warps[:last]
	if moved != w {
		moved.pos = i
		sm.rq.repos(last, i)
	} else {
		sm.rq.shrink()
	}
	w.cta.warpsLeft--
	if w.cta.warpsLeft == 0 {
		// Recycle the whole CTA: every sibling (including w) has retired
		// and none is referenced by sm.warps or the ready queue anymore,
		// so the structs go back to the free lists for the refill below.
		cta := w.cta
		sm.freeWarps = append(sm.freeWarps, cta.warps...)
		cta.warps = cta.warps[:0]
		sm.freeCTAs = append(sm.freeCTAs, cta)
		sm.ctas--
		sm.refill(eng)
	}
	sm.shard.activeWarps--
}

// address derives the byte address of line index l of warp w's current
// access, per the access pattern rules of package trace.
//
// This is the reference derivation. The hot path uses the predigested
// equivalent (instRec.seed + instRec.lineAddr, see program.go), which
// hoists the region layout and partition math out of the per-line
// loop; TestHoistedAddressGenEquivalence pins the two bit-identical.
func (g *GPU) address(m *trace.MemAccess, w *warpState, l int) uint64 {
	base := g.regionBase[m.Region]
	regionLines := g.regionLines[m.Region]
	cnt := uint64(w.streamOff[m.Region])

	switch m.Pattern {
	case trace.PatShared:
		// Every warp streams the same sequence.
		line := (cnt*uint64(maxInt(int(m.Lines), 1)) + uint64(l)) % regionLines
		return base + line*isa.LineBytes

	case trace.PatRandom:
		h := trace.Hash64(uint64(w.id)<<40 ^ uint64(w.accessSeq)<<8 ^ uint64(l))
		return base + (h%regionLines)*isa.LineBytes

	case trace.PatOwn, trace.PatNeighbor:
		totalWarps := uint64(w.eng.kernel.Warps())
		partLines := regionLines / totalWarps
		if partLines == 0 {
			partLines = 1
		}
		owner := uint64(w.id)
		if m.Pattern == trace.PatNeighbor {
			h := trace.Hash64(uint64(w.id)<<32 ^ uint64(w.accessSeq)<<4 ^ 0xA5)
			if h%100 < uint64(m.NeighborPct) {
				// Redirect into the partition of the corresponding
				// warp of an adjacent CTA.
				wpc := uint64(w.eng.kernel.WarpsPerCTA)
				if h&1 == 0 && owner+wpc < totalWarps {
					owner += wpc
				} else if owner >= wpc {
					owner -= wpc
				} else if owner+wpc < totalWarps {
					owner += wpc
				}
			}
		}
		partBase := (owner * partLines) % regionLines
		var line uint64
		if m.Lines <= 1 {
			// Coalesced streaming through the partition.
			line = partBase + cnt%partLines
		} else {
			// Divergent access: lines scatter within the partition.
			h := trace.Hash64(uint64(w.id)<<24 ^ uint64(w.accessSeq)<<6 ^ uint64(l))
			line = partBase + h%partLines
		}
		return base + (line%regionLines)*isa.LineBytes

	default:
		panic(fmt.Sprintf("sim: unknown access pattern %v", m.Pattern))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
