package sim

import (
	"fmt"
	"math"

	"gpujoule/internal/isa"
	"gpujoule/internal/memsys"
	"gpujoule/internal/trace"
)

// warpState is the execution context of one resident 32-thread warp.
type warpState struct {
	eng *launchEngine
	cta *ctaState

	// id is the warp's kernel-global identity (cta*warpsPerCTA + lane).
	id int

	// readyAt is the earliest time the warp may issue its next
	// instruction.
	readyAt float64
	// blocked marks a warp waiting at a CTA barrier.
	blocked bool

	// Program position: body index, remaining repeats of the current
	// instruction, and the body iteration count.
	bodyIdx int
	repLeft int
	iter    int

	// streamOff[r] counts the warp's accesses to region r, driving
	// streaming address generation.
	streamOff []uint32
	// accessSeq counts all memory accesses, seeding per-access hashes.
	accessSeq uint32
}

// ctaState tracks one resident CTA's warps and barrier.
type ctaState struct {
	id        int
	warpsLeft int
	arrived   int
	warps     []*warpState
}

// smState is one streaming multiprocessor.
type smState struct {
	gpm *gpmState
	l1  *memsys.Cache

	clock float64
	busy  float64 // issue-occupied cycles within the current launch

	warps []*warpState
	ctas  int // resident CTA count
}

// beginLaunch resets per-launch SM state.
func (sm *smState) beginLaunch(start float64) {
	sm.clock = start
	sm.busy = 0
	sm.warps = sm.warps[:0]
	sm.ctas = 0
}

// refill pulls CTAs from the GPM queue until the residency limit is
// reached or the queue empties. It reports whether any warps are now
// resident.
func (sm *smState) refill(eng *launchEngine) bool {
	max := eng.gpu.cfg.maxCTAs()
	k := eng.kernel
	for sm.ctas < max {
		ctaID, ok := sm.gpm.takeCTA()
		if !ok {
			break
		}
		cta := &ctaState{id: ctaID, warpsLeft: k.WarpsPerCTA}
		for wi := 0; wi < k.WarpsPerCTA; wi++ {
			w := &warpState{
				eng:       eng,
				cta:       cta,
				id:        ctaID*k.WarpsPerCTA + wi,
				readyAt:   sm.clock,
				repLeft:   k.Body[0].Repeat(),
				streamOff: make([]uint32, len(eng.gpu.app.Regions)),
			}
			cta.warps = append(cta.warps, w)
			sm.warps = append(sm.warps, w)
		}
		sm.ctas++
		eng.activeWarps += k.WarpsPerCTA
	}
	return len(sm.warps) > 0
}

// advance runs the SM's event loop until its clock reaches `until` or
// it runs out of work. It reports whether any instruction issued.
func (sm *smState) advance(until float64, eng *launchEngine) bool {
	progressed := false
	for {
		if len(sm.warps) == 0 {
			if !sm.refill(eng) {
				if sm.clock < until {
					sm.clock = until
				}
				return progressed
			}
		}
		// Oldest-ready-first selection among unblocked warps.
		var w *warpState
		minReady := math.Inf(1)
		for _, cand := range sm.warps {
			if !cand.blocked && cand.readyAt < minReady {
				minReady = cand.readyAt
				w = cand
			}
		}
		if w == nil {
			// Every resident warp is blocked at a barrier. This can
			// only happen on a malformed kernel (barrier under
			// divergent retirement); fail loudly rather than hang.
			panic(fmt.Sprintf("sim: SM deadlock in kernel %q: all %d warps blocked at barrier",
				eng.kernel.Name, len(sm.warps)))
		}
		if minReady >= until {
			if sm.clock < until {
				sm.clock = until
			}
			return progressed
		}
		if sm.clock < minReady {
			sm.clock = minReady
		}
		sm.issue(w, eng)
		progressed = true
	}
}

// issue executes w's next instruction at sm.clock.
func (sm *smState) issue(w *warpState, eng *launchEngine) {
	k := eng.kernel
	inst := &k.Body[w.bodyIdx]
	op := inst.Op
	active := inst.ActiveThreads()

	eng.counts.WarpInst[op]++
	eng.counts.Inst[op] += uint64(active)
	if col := eng.gpu.col; col != nil {
		gc := &col.GPMs[sm.gpm.id]
		gc.WarpInstructions++
		gc.ThreadInstructions += uint64(active)
	}

	occ := float64(op.IssueCycles())

	switch {
	case op.IsCompute():
		w.readyAt = sm.clock + occ + float64(op.Latency())

	case op.IsGlobalMemory():
		lines := int(inst.Mem.Lines)
		if lines <= 0 {
			lines = 1
		}
		// A divergent access occupies the LSU for one cycle per
		// distinct line.
		occ += float64(lines - 1)
		isStore := op == isa.OpStoreGlobal
		done := eng.gpu.access(sm, sm.clock+occ, inst.Mem, w, isStore)
		w.accessSeq++
		w.streamOff[inst.Mem.Region]++
		if isStore {
			// Stores retire through a write buffer without blocking.
			w.readyAt = sm.clock + occ + latStore
		} else {
			w.readyAt = done
		}

	case op.IsShared():
		eng.counts.Txn[isa.TxnShmToRF]++
		w.readyAt = sm.clock + occ + latShared

	case op == isa.OpBarrier:
		cta := w.cta
		cta.arrived++
		if cta.arrived >= cta.warpsLeft {
			// Last arrival releases everyone at the current time.
			cta.arrived = 0
			for _, sib := range cta.warps {
				if sib.blocked {
					sib.blocked = false
					sib.readyAt = sm.clock
				}
			}
			w.readyAt = sm.clock + occ
		} else {
			w.blocked = true
			w.readyAt = sm.clock + occ
		}

	case op == isa.OpExit:
		sm.busy += occ
		sm.clock += occ
		sm.retire(w, eng)
		return

	default: // OpBranch, OpNop
		w.readyAt = sm.clock + occ + float64(op.Latency())
	}

	sm.busy += occ
	sm.clock += occ

	// Advance the program position.
	w.repLeft--
	if w.repLeft > 0 {
		return
	}
	w.bodyIdx++
	if w.bodyIdx >= len(k.Body) {
		w.bodyIdx = 0
		w.iter++
		if w.iter >= k.EffIters() {
			sm.retire(w, eng)
			return
		}
	}
	w.repLeft = k.Body[w.bodyIdx].Repeat()
}

// retire removes a finished warp, releasing its CTA slot when the last
// sibling finishes.
func (sm *smState) retire(w *warpState, eng *launchEngine) {
	end := w.readyAt
	if sm.clock > end {
		end = sm.clock
	}
	if end > eng.end {
		eng.end = end
	}
	for i, cand := range sm.warps {
		if cand == w {
			sm.warps[i] = sm.warps[len(sm.warps)-1]
			sm.warps = sm.warps[:len(sm.warps)-1]
			break
		}
	}
	w.cta.warpsLeft--
	if w.cta.warpsLeft == 0 {
		sm.ctas--
		sm.refill(eng)
	}
	eng.activeWarps--
}

// address derives the byte address of line index l of warp w's current
// access, per the access pattern rules of package trace.
func (g *GPU) address(m *trace.MemAccess, w *warpState, l int) uint64 {
	base := g.regionBase[m.Region]
	regionLines := g.regionLines[m.Region]
	cnt := uint64(w.streamOff[m.Region])

	switch m.Pattern {
	case trace.PatShared:
		// Every warp streams the same sequence.
		line := (cnt*uint64(maxInt(int(m.Lines), 1)) + uint64(l)) % regionLines
		return base + line*isa.LineBytes

	case trace.PatRandom:
		h := trace.Hash64(uint64(w.id)<<40 ^ uint64(w.accessSeq)<<8 ^ uint64(l))
		return base + (h%regionLines)*isa.LineBytes

	case trace.PatOwn, trace.PatNeighbor:
		totalWarps := uint64(w.eng.kernel.Warps())
		partLines := regionLines / totalWarps
		if partLines == 0 {
			partLines = 1
		}
		owner := uint64(w.id)
		if m.Pattern == trace.PatNeighbor {
			h := trace.Hash64(uint64(w.id)<<32 ^ uint64(w.accessSeq)<<4 ^ 0xA5)
			if h%100 < uint64(m.NeighborPct) {
				// Redirect into the partition of the corresponding
				// warp of an adjacent CTA.
				wpc := uint64(w.eng.kernel.WarpsPerCTA)
				if h&1 == 0 && owner+wpc < totalWarps {
					owner += wpc
				} else if owner >= wpc {
					owner -= wpc
				} else if owner+wpc < totalWarps {
					owner += wpc
				}
			}
		}
		partBase := (owner * partLines) % regionLines
		var line uint64
		if m.Lines <= 1 {
			// Coalesced streaming through the partition.
			line = partBase + cnt%partLines
		} else {
			// Divergent access: lines scatter within the partition.
			h := trace.Hash64(uint64(w.id)<<24 ^ uint64(w.accessSeq)<<6 ^ uint64(l))
			line = partBase + h%partLines
		}
		return base + (line%regionLines)*isa.LineBytes

	default:
		panic(fmt.Sprintf("sim: unknown access pattern %v", m.Pattern))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
