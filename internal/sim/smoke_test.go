package sim

import (
	"context"

	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// streamApp builds a simple memory-streaming app: every warp streams
// its own partition of a large region.
func streamApp(ctas, warpsPerCTA, iters int, regionBytes uint64) *trace.App {
	k := &trace.Kernel{
		Name:        "stream",
		Grid:        ctas,
		WarpsPerCTA: warpsPerCTA,
		Iters:       iters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
			{Op: isa.OpFFMA32, Times: 4},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{
		Name:     "stream-smoke",
		Category: trace.CategoryMemory,
		Regions: []trace.Region{
			{Name: "a", Bytes: regionBytes},
			{Name: "b", Bytes: regionBytes},
			{Name: "c", Bytes: regionBytes},
		},
		Launches: []trace.Launch{{Kernel: k}},
	}
}

// computeApp builds a compute-heavy app with a small cached footprint.
func computeApp(ctas, warpsPerCTA, iters int) *trace.App {
	k := &trace.Kernel{
		Name:        "fma",
		Grid:        ctas,
		WarpsPerCTA: warpsPerCTA,
		Iters:       iters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpFFMA32, Times: 40},
		},
	}
	return &trace.App{
		Name:     "fma-smoke",
		Category: trace.CategoryCompute,
		Regions:  []trace.Region{{Name: "a", Bytes: 8 << 20}},
		Launches: []trace.Launch{{Kernel: k}},
	}
}

func TestSmokeStreamScalesWithDRAM(t *testing.T) {
	app := streamApp(256, 4, 16, 64<<20)

	r1, err := Simulate(context.Background(), MultiGPM(1, BW2x), app)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Simulate(context.Background(), MultiGPM(4, BW2x), app)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("1-GPM: cycles=%.0f L1=%.2f L2=%.2f remote=%.2f",
		r1.Cycles(), r1.L1HitRate(), r1.L2HitRate(), r1.RemoteFillFraction())
	t.Logf("4-GPM: cycles=%.0f L1=%.2f L2=%.2f remote=%.2f",
		r4.Cycles(), r4.L1HitRate(), r4.L2HitRate(), r4.RemoteFillFraction())

	speedup := r1.Cycles() / r4.Cycles()
	if speedup < 1.5 {
		t.Errorf("streaming app should scale with DRAM bandwidth: got %.2fx for 4 GPMs", speedup)
	}
	if frac := r4.RemoteFillFraction(); frac > 0.3 {
		t.Errorf("partitioned streaming should be mostly local after first touch: remote=%.2f", frac)
	}
}

func TestSmokeRandomTrafficIsRemote(t *testing.T) {
	k := &trace.Kernel{
		Name:        "gather",
		Grid:        256,
		WarpsPerCTA: 4,
		Iters:       8,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom, Lines: 8}},
			{Op: isa.OpIAdd32, Times: 4},
		},
	}
	app := &trace.App{
		Name:     "gather-smoke",
		Category: trace.CategoryMemory,
		Regions:  []trace.Region{{Name: "graph", Bytes: 256 << 20}},
		Launches: []trace.Launch{{Kernel: k}},
	}
	r4, err := Simulate(context.Background(), MultiGPM(4, BW2x), app)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4-GPM random: remote=%.2f interGPM sectors=%d",
		r4.RemoteFillFraction(), r4.Counts.Txn[isa.TxnInterGPM])
	if frac := r4.RemoteFillFraction(); frac < 0.5 {
		t.Errorf("random access over 4 GPMs should be ~75%% remote, got %.2f", frac)
	}
	if r4.Counts.Txn[isa.TxnInterGPM] == 0 {
		t.Error("remote fills must charge inter-GPM transactions")
	}
}

func TestSmokeComputeScalesNearLinearly(t *testing.T) {
	app := computeApp(512, 4, 24)
	r1, err := Simulate(context.Background(), MultiGPM(1, BW2x), app)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Simulate(context.Background(), MultiGPM(4, BW2x), app)
	if err != nil {
		t.Fatal(err)
	}
	speedup := r1.Cycles() / r4.Cycles()
	t.Logf("compute speedup 1->4 GPM: %.2fx (stall frac 1-GPM: %.2f)",
		speedup, float64(r1.Counts.StallCycles)/float64(r1.Counts.Cycles*uint64(r1.Counts.SMCount)))
	if speedup < 3.1 || speedup > 4.6 {
		t.Errorf("compute-bound app should scale near-linearly: got %.2fx", speedup)
	}
}

func TestSmokeMonolithicHasNoRemote(t *testing.T) {
	app := streamApp(256, 4, 8, 64<<20)
	cfg := MultiGPM(4, BW2x)
	cfg.Monolithic = true
	r, err := Simulate(context.Background(), cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemoteLineFills != 0 || r.Counts.Txn[isa.TxnInterGPM] != 0 {
		t.Errorf("monolithic GPU must have no remote traffic: fills=%d txns=%d",
			r.RemoteLineFills, r.Counts.Txn[isa.TxnInterGPM])
	}
	if r.Counts.GPMCount != 1 {
		t.Errorf("monolithic GPU is one physical module, got %d", r.Counts.GPMCount)
	}
}
