package sim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"gpujoule/internal/obs"
	"gpujoule/internal/sim"
)

// TestTraceTimelineMatchesLaunches checks that the timeline recorded by
// WithTrace agrees with the result's own launch records: same kernels,
// same launch windows, one busy/stall phase per module.
func TestTraceTimelineMatchesLaunches(t *testing.T) {
	app := obsApp(t, "Stream")
	cfg := sim.MultiGPM(4, sim.BW2x)

	res, err := sim.Simulate(context.Background(), cfg, app, sim.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("WithTrace run carries no trace")
	}
	if tr.SchemaVersion != obs.SchemaVersion {
		t.Errorf("trace schema version = %d, want %d", tr.SchemaVersion, obs.SchemaVersion)
	}
	if tr.ClockHz != sim.NominalClockHz {
		t.Errorf("trace clock = %g, want %g", tr.ClockHz, sim.NominalClockHz)
	}
	if len(tr.Launches) != len(res.Launches) {
		t.Fatalf("trace has %d launches, result has %d", len(tr.Launches), len(res.Launches))
	}
	for i := range tr.Launches {
		got, want := &tr.Launches[i], &res.Launches[i]
		if got.Kernel != want.Kernel {
			t.Errorf("launch %d: kernel %q, want %q", i, got.Kernel, want.Kernel)
		}
		if got.StartCycles != want.Start || got.EndCycles != want.End {
			t.Errorf("launch %d: window [%g, %g], want [%g, %g]",
				i, got.StartCycles, got.EndCycles, want.Start, want.End)
		}
		if len(got.GPMs) != cfg.GPMs {
			t.Fatalf("launch %d: %d GPM phases, want %d", i, len(got.GPMs), cfg.GPMs)
		}
		for g, p := range got.GPMs {
			if p.GPM != g {
				t.Errorf("launch %d phase %d: GPM index %d", i, g, p.GPM)
			}
			if p.BusyCycles < 0 || p.StallCycles < 0 {
				t.Errorf("launch %d GPM %d: negative phase (%g busy, %g stall)",
					i, g, p.BusyCycles, p.StallCycles)
			}
			window := (want.End - want.Start) * float64(cfg.SMsPerGPM)
			if sum := p.BusyCycles + p.StallCycles; sum > window*1.0000001 {
				t.Errorf("launch %d GPM %d: busy+stall %g exceeds SM-cycle window %g",
					i, g, sum, window)
			}
		}
	}
	if len(tr.Samples) == 0 {
		t.Error("traced run recorded no sampler series (default trace interval not installed?)")
	}
}

// chromeDoc mirrors the Chrome trace_event file shape for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// TestTraceChromeExport checks that the Chrome rendering is a valid
// trace_event document: parseable JSON, known phase codes, nonnegative
// durations, and per-track monotonic timestamps.
func TestTraceChromeExport(t *testing.T) {
	app := obsApp(t, "Stream")
	cfgs := []sim.Config{sim.MultiGPM(4, sim.BW1x), sim.MultiGPM(2, sim.BW2x)}

	var points []obs.PointTrace
	for _, cfg := range cfgs {
		res, err := sim.Simulate(context.Background(), cfg, app, sim.WithTrace())
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, obs.PointTrace{Name: app.Name + " on " + cfg.Name(), Trace: res.Trace})
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTraces(&buf, points); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["generator"] != "gpujoule" {
		t.Errorf("otherData.generator = %v", doc.OtherData["generator"])
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome export has no events")
	}

	type track struct {
		pid, tid int
		ph       string
	}
	lastTs := map[track]float64{}
	pids := map[int]bool{}
	nX := 0
	for i, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		switch ev.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "X", "C":
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %d (%s): negative ts %g / dur %g", i, ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Ph == "X" {
			nX++
		}
		k := track{ev.Pid, ev.Tid, ev.Ph}
		if prev, ok := lastTs[k]; ok && ev.Ts < prev {
			t.Errorf("event %d (%s): ts %g goes backwards on pid %d tid %d (%s track, prev %g)",
				i, ev.Name, ev.Ts, ev.Pid, ev.Tid, ev.Ph, prev)
		}
		lastTs[k] = ev.Ts
	}
	if nX == 0 {
		t.Error("Chrome export has no duration events")
	}
	// One process track per traced point.
	for i := range points {
		if !pids[i+1] {
			t.Errorf("no events for point %d (pid %d)", i, i+1)
		}
	}
}
