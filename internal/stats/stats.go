// Package stats provides the small statistical helpers the evaluation
// harness needs: geometric and arithmetic means, mean absolute error,
// and min/max reductions.
package stats

import "math"

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be
// positive; returns NaN otherwise or when empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// MeanAbs returns the mean of |x| over xs, or NaN when empty.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or -Inf when empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or +Inf when empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// RelErrPct returns the relative error of modeled against measured, in
// percent: (modeled-measured)/measured·100.
func RelErrPct(modeled, measured float64) float64 {
	if measured == 0 {
		return math.NaN()
	}
	return (modeled - measured) / measured * 100
}
