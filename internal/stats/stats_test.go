package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %g, want 2", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean is NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean = %g, want 4", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Error("non-positive values are undefined")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty geomean is NaN")
	}
}

func TestMeanAbs(t *testing.T) {
	if m := MeanAbs([]float64{-3, 3, -6}); m != 4 {
		t.Errorf("MeanAbs = %g, want 4", m)
	}
	if !math.IsNaN(MeanAbs(nil)) {
		t.Error("empty MeanAbs is NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Error("min/max wrong")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty reductions are infinities")
	}
}

func TestRelErrPct(t *testing.T) {
	if e := RelErrPct(110, 100); math.Abs(e-10) > 1e-12 {
		t.Errorf("RelErrPct = %g, want 10", e)
	}
	if e := RelErrPct(90, 100); math.Abs(e+10) > 1e-12 {
		t.Errorf("RelErrPct = %g, want -10", e)
	}
	if !math.IsNaN(RelErrPct(1, 0)) {
		t.Error("zero measured is undefined")
	}
}

func TestGeoMeanAtMostMeanProperty(t *testing.T) {
	// AM-GM inequality on positive data.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
