// Package trace defines the workload representation consumed by the
// performance simulator: applications made of kernel launches, kernels
// made of CTAs and warps, and compact per-warp instruction templates
// with parametric memory access patterns.
//
// The representation is trace-driven in the same sense as the paper's
// proprietary simulator: the simulator replays instruction streams and
// memory access streams; it never executes real code. Programs are
// stored as templates shared by all warps of a kernel, with addresses
// derived per warp, which keeps even 32-GPM (512 SM) runs compact.
package trace

import (
	"fmt"

	"gpujoule/internal/isa"
)

// Pattern selects how a global-memory access derives its address from
// the accessing warp's identity and progress.
type Pattern uint8

// Access patterns.
const (
	// PatOwn streams through the warp's own contiguous partition of the
	// region (classic data-parallel partitioning; first touch lands the
	// pages on the accessing warp's GPM).
	PatOwn Pattern = iota
	// PatNeighbor behaves like PatOwn but redirects a fraction of
	// accesses (NeighborPct) into the address partition of an adjacent
	// CTA, modeling stencil halo exchange.
	PatNeighbor
	// PatShared streams through a region that all warps read in the
	// same order (broadcast data such as cluster centroids or lookup
	// tables); highly cacheable.
	PatShared
	// PatRandom draws uniformly random line addresses over the whole
	// region (graph traversal, hash tables); defeats locality.
	PatRandom
)

func (p Pattern) String() string {
	switch p {
	case PatOwn:
		return "own"
	case PatNeighbor:
		return "neighbor"
	case PatShared:
		return "shared"
	case PatRandom:
		return "random"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// HomePolicy selects how a region's pages get a home GPM.
type HomePolicy uint8

// Home policies.
const (
	// HomeFirstTouch assigns a page to the GPM whose SM touches it
	// first (the paper's configuration, §V-A1).
	HomeFirstTouch HomePolicy = iota
	// HomeStriped round-robins pages across GPMs, modeling data whose
	// placement an earlier, differently-shaped phase established.
	HomeStriped
)

func (h HomePolicy) String() string {
	switch h {
	case HomeFirstTouch:
		return "first-touch"
	case HomeStriped:
		return "striped"
	default:
		return fmt.Sprintf("home(%d)", uint8(h))
	}
}

// Region describes one global-memory data structure of a kernel.
type Region struct {
	// Name identifies the region in diagnostics.
	Name string
	// Bytes is the region size. Addresses are line-aligned within it.
	Bytes uint64
	// Home selects the page-placement policy for the region.
	Home HomePolicy
}

// MemAccess parameterizes a global-memory instruction in a warp body.
type MemAccess struct {
	// Region indexes into Kernel.Regions.
	Region int
	// Pattern selects the address-derivation rule.
	Pattern Pattern
	// Lines is the number of distinct 128-byte cache lines the warp
	// touches per execution (1 = fully coalesced, 32 = fully
	// divergent). Zero means 1.
	Lines uint8
	// NeighborPct is the percentage (0-100) of PatNeighbor accesses
	// redirected to an adjacent partition.
	NeighborPct uint8
	// Chase serializes the access against the warp's previous access to
	// the same region (a dependent pointer chase), preventing the
	// simulator from overlapping its latency with later instructions of
	// the same warp.
	Chase bool
}

// Inst is one entry of a warp body template.
type Inst struct {
	// Op is the instruction class.
	Op isa.Op
	// Active is the number of active threads (1-32); zero means 32.
	// Values below 32 model control divergence.
	Active uint8
	// Mem parameterizes the access for global-memory opcodes; it must
	// be nil for all other opcodes.
	Mem *MemAccess
	// Times repeats the instruction (with independent operands unless
	// Mem.Chase is set); zero means 1. Used to compress unrolled loops.
	Times int
}

// ActiveThreads returns the effective active-thread count.
func (in *Inst) ActiveThreads() int {
	if in.Active == 0 {
		return 32
	}
	return int(in.Active)
}

// Repeat returns the effective repetition count.
func (in *Inst) Repeat() int {
	if in.Times <= 0 {
		return 1
	}
	return in.Times
}

// Kernel is one GPU kernel: a grid of CTAs, each holding identical
// warps that execute Body Iters times. Region indices in Body refer to
// the owning App's region table, so that page homes established by one
// kernel (e.g. an initialization pass) persist for later launches.
type Kernel struct {
	// Name identifies the kernel in diagnostics.
	Name string
	// Grid is the number of CTAs.
	Grid int
	// WarpsPerCTA is the number of 32-thread warps per CTA.
	WarpsPerCTA int
	// Iters is how many times each warp executes Body. Zero means 1.
	Iters int
	// Body is the per-warp instruction template.
	Body []Inst
}

// EffIters returns the effective iteration count.
func (k *Kernel) EffIters() int {
	if k.Iters <= 0 {
		return 1
	}
	return k.Iters
}

// Warps returns the total warp count of the kernel.
func (k *Kernel) Warps() int { return k.Grid * k.WarpsPerCTA }

// InstructionsPerWarp returns the number of dynamic warp instructions
// one warp executes.
func (k *Kernel) InstructionsPerWarp() int {
	n := 0
	for i := range k.Body {
		n += k.Body[i].Repeat()
	}
	return n * k.EffIters()
}

// Validate checks internal consistency of the kernel description
// against an application with numRegions global-memory regions.
func (k *Kernel) Validate(numRegions int) error {
	if k.Grid <= 0 {
		return fmt.Errorf("trace: kernel %q: grid must be positive, got %d", k.Name, k.Grid)
	}
	if k.WarpsPerCTA <= 0 {
		return fmt.Errorf("trace: kernel %q: warps per CTA must be positive, got %d", k.Name, k.WarpsPerCTA)
	}
	if len(k.Body) == 0 {
		return fmt.Errorf("trace: kernel %q: empty body", k.Name)
	}
	for i := range k.Body {
		in := &k.Body[i]
		if !in.Op.Valid() {
			return fmt.Errorf("trace: kernel %q: body[%d]: invalid opcode", k.Name, i)
		}
		if in.Active > 32 {
			return fmt.Errorf("trace: kernel %q: body[%d]: %d active threads exceeds warp width", k.Name, i, in.Active)
		}
		if in.Op.IsGlobalMemory() {
			if in.Mem == nil {
				return fmt.Errorf("trace: kernel %q: body[%d]: %v requires a MemAccess", k.Name, i, in.Op)
			}
			if in.Mem.Region < 0 || in.Mem.Region >= numRegions {
				return fmt.Errorf("trace: kernel %q: body[%d]: region %d out of range (have %d regions)",
					k.Name, i, in.Mem.Region, numRegions)
			}
			if in.Mem.Lines > 32 {
				return fmt.Errorf("trace: kernel %q: body[%d]: %d lines exceeds warp width", k.Name, i, in.Mem.Lines)
			}
			if in.Mem.NeighborPct > 100 {
				return fmt.Errorf("trace: kernel %q: body[%d]: neighbor pct %d out of range", k.Name, i, in.Mem.NeighborPct)
			}
		} else if in.Mem != nil {
			return fmt.Errorf("trace: kernel %q: body[%d]: %v must not carry a MemAccess", k.Name, i, in.Op)
		}
	}
	return nil
}

// Launch is one kernel launch within an application, optionally
// repeated back-to-back (BFS-style iterative apps launch the same small
// kernel hundreds of times).
type Launch struct {
	Kernel *Kernel
	// Count is the number of consecutive launches. Zero means 1.
	Count int
}

// EffCount returns the effective launch count.
func (l *Launch) EffCount() int {
	if l.Count <= 0 {
		return 1
	}
	return l.Count
}

// Category classifies an application per Table II.
type Category uint8

// Application categories (Table II).
const (
	// CategoryCompute marks compute-intensive applications.
	CategoryCompute Category = iota
	// CategoryMemory marks memory-bandwidth-intensive applications.
	CategoryMemory
)

func (c Category) String() string {
	switch c {
	case CategoryCompute:
		return "C"
	case CategoryMemory:
		return "M"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// App is a full application: a sequence of kernel launches sharing one
// address space. Regions are owned by the app so that page homes
// established by one launch persist for all later launches.
type App struct {
	// Name is the Table II abbreviation (e.g. "Lulesh-150").
	Name string
	// Category is the Table II C/M classification.
	Category Category
	// Regions is the global-memory region table shared by all kernels.
	Regions []Region
	// Launches is the launch sequence.
	Launches []Launch
	// HostGapCycles is the host-side processing time between
	// consecutive kernel launches, in GPU cycles. Zero selects the
	// simulator default (a few µs). Iterative apps with host-side work
	// between launches (BFS frontier management, AMR regridding) set
	// this large, which is what defeats coarse power sensors (§IV-B2).
	HostGapCycles float64
}

// Kernels returns the distinct kernels of the app, in launch order.
func (a *App) Kernels() []*Kernel {
	seen := make(map[*Kernel]bool)
	var ks []*Kernel
	for i := range a.Launches {
		k := a.Launches[i].Kernel
		if !seen[k] {
			seen[k] = true
			ks = append(ks, k)
		}
	}
	return ks
}

// TotalLaunches returns the total number of kernel launches.
func (a *App) TotalLaunches() int {
	n := 0
	for i := range a.Launches {
		n += a.Launches[i].EffCount()
	}
	return n
}

// Validate checks every region and kernel of the application.
func (a *App) Validate() error {
	if len(a.Launches) == 0 {
		return fmt.Errorf("trace: app %q has no launches", a.Name)
	}
	for ri, r := range a.Regions {
		if r.Bytes == 0 {
			return fmt.Errorf("trace: app %q: region %d (%s): zero size", a.Name, ri, r.Name)
		}
	}
	for i := range a.Launches {
		if a.Launches[i].Kernel == nil {
			return fmt.Errorf("trace: app %q: launch %d has nil kernel", a.Name, i)
		}
		if err := a.Launches[i].Kernel.Validate(len(a.Regions)); err != nil {
			return fmt.Errorf("app %q: %w", a.Name, err)
		}
	}
	return nil
}

// Hash64 is a small deterministic mixing function (SplitMix64 finalizer)
// used to derive pseudo-random but replayable addresses from warp
// identity and progress counters. It is exported so the simulator and
// workload generators derive identical streams.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
