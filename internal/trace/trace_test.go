package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"gpujoule/internal/isa"
)

func validKernel() *Kernel {
	return &Kernel{
		Name: "k", Grid: 4, WarpsPerCTA: 2, Iters: 3,
		Body: []Inst{
			{Op: isa.OpLoadGlobal, Mem: &MemAccess{Region: 0, Pattern: PatOwn}},
			{Op: isa.OpFFMA32, Times: 5},
		},
	}
}

func validApp() *App {
	return &App{
		Name:     "app",
		Regions:  []Region{{Name: "a", Bytes: 1 << 20}},
		Launches: []Launch{{Kernel: validKernel()}},
	}
}

func TestAppValidateAccepts(t *testing.T) {
	if err := validApp().Validate(); err != nil {
		t.Fatalf("valid app rejected: %v", err)
	}
}

func TestKernelValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Kernel)
		want   string
	}{
		{"zero grid", func(k *Kernel) { k.Grid = 0 }, "grid"},
		{"zero warps", func(k *Kernel) { k.WarpsPerCTA = 0 }, "warps"},
		{"empty body", func(k *Kernel) { k.Body = nil }, "empty body"},
		{"bad opcode", func(k *Kernel) { k.Body[1].Op = isa.Op(250) }, "invalid opcode"},
		{"too many threads", func(k *Kernel) { k.Body[1].Active = 33 }, "warp width"},
		{"missing mem", func(k *Kernel) { k.Body[0].Mem = nil }, "requires a MemAccess"},
		{"region range", func(k *Kernel) { k.Body[0].Mem = &MemAccess{Region: 5} }, "out of range"},
		{"too many lines", func(k *Kernel) { k.Body[0].Mem.Lines = 40 }, "lines exceeds"},
		{"neighbor pct", func(k *Kernel) { k.Body[0].Mem.NeighborPct = 130 }, "neighbor pct"},
		{"mem on compute", func(k *Kernel) { k.Body[1].Mem = &MemAccess{} }, "must not carry"},
	}
	for _, c := range cases {
		k := validKernel()
		c.mutate(k)
		err := k.Validate(1)
		if err == nil {
			t.Errorf("%s: validation should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestAppValidateRejections(t *testing.T) {
	app := validApp()
	app.Regions[0].Bytes = 0
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "zero size") {
		t.Errorf("zero-size region should fail, got %v", err)
	}

	app = validApp()
	app.Launches = nil
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "no launches") {
		t.Errorf("empty launch list should fail, got %v", err)
	}

	app = validApp()
	app.Launches[0].Kernel = nil
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "nil kernel") {
		t.Errorf("nil kernel should fail, got %v", err)
	}
}

func TestKernelArithmetic(t *testing.T) {
	k := validKernel()
	if k.EffIters() != 3 {
		t.Errorf("EffIters = %d, want 3", k.EffIters())
	}
	k.Iters = 0
	if k.EffIters() != 1 {
		t.Errorf("zero Iters means 1, got %d", k.EffIters())
	}
	if k.Warps() != 8 {
		t.Errorf("Warps = %d, want 8", k.Warps())
	}
	// 1 load + 5 FMA repeats = 6 dynamic instructions per iteration.
	if got := k.InstructionsPerWarp(); got != 6 {
		t.Errorf("InstructionsPerWarp = %d, want 6", got)
	}
}

func TestInstDefaults(t *testing.T) {
	in := Inst{Op: isa.OpFAdd32}
	if in.ActiveThreads() != 32 {
		t.Errorf("default active threads = %d, want 32", in.ActiveThreads())
	}
	if in.Repeat() != 1 {
		t.Errorf("default repeat = %d, want 1", in.Repeat())
	}
	in.Active = 12
	in.Times = 7
	if in.ActiveThreads() != 12 || in.Repeat() != 7 {
		t.Error("explicit active/times not honored")
	}
}

func TestLaunchCounting(t *testing.T) {
	k := validKernel()
	app := &App{
		Name:    "x",
		Regions: []Region{{Name: "a", Bytes: 1 << 20}},
		Launches: []Launch{
			{Kernel: k, Count: 3},
			{Kernel: k},
		},
	}
	if got := app.TotalLaunches(); got != 4 {
		t.Errorf("TotalLaunches = %d, want 4", got)
	}
	if ks := app.Kernels(); len(ks) != 1 || ks[0] != k {
		t.Errorf("Kernels should deduplicate, got %d", len(ks))
	}
}

func TestEnumStrings(t *testing.T) {
	for _, p := range []Pattern{PatOwn, PatNeighbor, PatShared, PatRandom} {
		if strings.HasPrefix(p.String(), "pattern(") {
			t.Errorf("pattern %d missing name", p)
		}
	}
	if PatOwn.String() != "own" || PatRandom.String() != "random" {
		t.Error("pattern names wrong")
	}
	if HomeFirstTouch.String() != "first-touch" || HomeStriped.String() != "striped" {
		t.Error("home policy names wrong")
	}
	if CategoryCompute.String() != "C" || CategoryMemory.String() != "M" {
		t.Error("Table II categories print as C and M")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 must be deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("distinct inputs should almost surely differ")
	}
}

func TestHash64MixesProperty(t *testing.T) {
	// Flipping any single input bit should change roughly half the
	// output bits; require at least 8 as a loose avalanche check.
	f := func(x uint64, bit uint8) bool {
		y := x ^ (1 << (bit % 64))
		diff := Hash64(x) ^ Hash64(y)
		n := 0
		for diff != 0 {
			diff &= diff - 1
			n++
		}
		return n >= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
