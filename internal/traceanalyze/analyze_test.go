package traceanalyze

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"gpujoule/internal/obs"
)

// mkRun builds a synthetic run: each kernel occupies a 100-cycle
// window back to back; busyFrac sets its busy/stall split over 1000
// SM-cycles.
func mkRun(kernels []string, busyFrac []float64) *Run {
	r := &Run{Name: "synthetic", ClockHz: 1e9}
	for i, k := range kernels {
		bf := 0.9
		if busyFrac != nil {
			bf = busyFrac[i]
		}
		start := float64(i * 100)
		r.Launches = append(r.Launches, Launch{
			Seq: i, Kernel: k, Start: start, End: start + 100,
			Busy: 1000 * bf, Stall: 1000 * (1 - bf),
			GPMs: []GPMPhase{{GPM: 0, Busy: 1000 * bf, Stall: 1000 * (1 - bf)}},
		})
	}
	return r
}

func TestSeqSignatureSeparatesBoundaries(t *testing.T) {
	if SeqSignature([]string{"ab", "c"}) == SeqSignature([]string{"a", "bc"}) {
		t.Error(`"ab","c" and "a","bc" collide — separator not folded in`)
	}
	if SeqSignature([]string{"a", "b"}) != SeqSignature([]string{"a", "b"}) {
		t.Error("equal sequences hash differently")
	}
	if SeqSignature(nil) != SeqSignature([]string{}) {
		t.Error("nil and empty sequences hash differently")
	}
}

func TestCanonicalCycleRotationInvariant(t *testing.T) {
	base, _, sigBase := CanonicalCycle([]string{"a", "b", "c"})
	for rot, members := range [][]string{
		{"a", "b", "c"}, {"b", "c", "a"}, {"c", "a", "b"},
	} {
		canon, rotation, sig := CanonicalCycle(members)
		if !reflect.DeepEqual(canon, base) {
			t.Errorf("rotation %d canonicalized to %v, want %v", rot, canon, base)
		}
		if sig != sigBase {
			t.Errorf("rotation %d signature %x, want %x", rot, sig, sigBase)
		}
		if want := (3 - rot) % 3; rotation != want {
			t.Errorf("rotation %d reported offset %d, want %d", rot, rotation, want)
		}
	}
	// Duplicate symbols: minimal rotation of b,a,b,a is a,b,a,b.
	canon, _, _ := CanonicalCycle([]string{"b", "a", "b", "a"})
	if !reflect.DeepEqual(canon, []string{"a", "b", "a", "b"}) {
		t.Errorf("canonical(b,a,b,a) = %v", canon)
	}
}

func TestDetectCycle(t *testing.T) {
	r := mkRun([]string{"init", "a", "b", "a", "b", "a", "b", "fin"}, nil)
	c := DetectCycle(r, CycleOptions{})
	if c == nil {
		t.Fatal("no cycle detected")
	}
	if c.Period != 2 || c.Iterations != 3 || c.Start != 1 {
		t.Fatalf("cycle = period %d, iters %d, start %d; want 2, 3, 1", c.Period, c.Iterations, c.Start)
	}
	if !reflect.DeepEqual(c.Members, []string{"a", "b"}) {
		t.Errorf("members = %v", c.Members)
	}
	if len(c.Iters) != 3 {
		t.Fatalf("got %d iteration stats", len(c.Iters))
	}
	it := c.Iters[1]
	if it.FirstSeq != 3 || it.LastSeq != 4 || it.Cycles != 200 {
		t.Errorf("iter 1 = %+v", it)
	}
	if math.Abs(it.Busy-1800) > 1e-9 || math.Abs(it.Stall-200) > 1e-9 {
		t.Errorf("iter 1 busy/stall = %g/%g, want 1800/200", it.Busy, it.Stall)
	}
	if len(c.MemberStats) != 2 || c.MemberStats[0].Kernel != "a" || c.MemberStats[0].Count != 3 {
		t.Errorf("member stats = %+v", c.MemberStats)
	}
	if got := c.MemberStats[0].MeanCycles(); got != 100 {
		t.Errorf("member a mean cycles = %g", got)
	}
}

func TestDetectCyclePrefersPrimitivePeriod(t *testing.T) {
	r := mkRun([]string{"a", "a", "a", "a"}, nil)
	c := DetectCycle(r, CycleOptions{})
	if c == nil || c.Period != 1 || c.Iterations != 4 {
		t.Fatalf("cycle = %+v, want period 1 with 4 iterations", c)
	}
}

func TestDetectCycleRotatedEntryMatchesSignature(t *testing.T) {
	// Two runs entering the same loop at different offsets must agree
	// on the canonical cycle signature.
	r1 := mkRun([]string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}, nil)
	r2 := mkRun([]string{"b", "c", "a", "b", "c", "a", "b", "c"}, nil)
	c1 := DetectCycle(r1, CycleOptions{})
	c2 := DetectCycle(r2, CycleOptions{})
	if c1 == nil || c2 == nil {
		t.Fatal("cycle not detected")
	}
	if c1.Signature != c2.Signature {
		t.Errorf("signatures differ: %x vs %x", c1.Signature, c2.Signature)
	}
	if !reflect.DeepEqual(c1.Members, c2.Members) {
		t.Errorf("canonical members differ: %v vs %v", c1.Members, c2.Members)
	}
}

func TestDetectCycleNone(t *testing.T) {
	r := mkRun([]string{"a", "b", "c", "d"}, nil)
	if c := DetectCycle(r, CycleOptions{}); c != nil {
		t.Errorf("detected a cycle in a non-repeating sequence: %+v", c)
	}
	if c := DetectCycle(&Run{}, CycleOptions{}); c != nil {
		t.Errorf("detected a cycle in an empty run: %+v", c)
	}
}

func TestSeparatePhases(t *testing.T) {
	r := mkRun(
		[]string{"c1", "c2", "m1", "m2", "m3", "c3"},
		[]float64{0.9, 0.8, 0.2, 0.1, 0.3, 0.95},
	)
	phases := Separate(r, PhaseOptions{})
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(phases), phases)
	}
	wantClass := []PhaseClass{ComputeBound, MemoryBound, ComputeBound}
	wantLaunches := []int{2, 3, 1}
	for i, p := range phases {
		if p.Class != wantClass[i] || p.Launches != wantLaunches[i] {
			t.Errorf("phase %d = %s with %d launches, want %s with %d",
				i, p.Class, p.Launches, wantClass[i], wantLaunches[i])
		}
	}
	if phases[1].FirstSeq != 2 || phases[1].LastSeq != 4 {
		t.Errorf("memory phase spans seq %d..%d, want 2..4", phases[1].FirstSeq, phases[1].LastSeq)
	}
	if !reflect.DeepEqual(phases[1].Kernels, []string{"m1", "m2", "m3"}) {
		t.Errorf("memory phase kernels = %v", phases[1].Kernels)
	}
}

func TestSeparateSaturationOverride(t *testing.T) {
	// A busy launch whose window sits inside a saturation episode is
	// memory-bound regardless of its busy split.
	r := mkRun([]string{"a", "b"}, []float64{0.9, 0.9})
	r.Episodes = []Episode{{Link: "ring[0]", Start: 100, End: 200, Utilization: 0.95}}
	phases := Separate(r, PhaseOptions{})
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(phases), phases)
	}
	if phases[0].Class != ComputeBound || phases[1].Class != MemoryBound {
		t.Errorf("classes = %s, %s", phases[0].Class, phases[1].Class)
	}
	if phases[1].SatCycles != 100 {
		t.Errorf("saturated cycles = %g, want 100", phases[1].SatCycles)
	}
}

func TestCostPhasesConservesEnergy(t *testing.T) {
	r := mkRun([]string{"c", "m"}, []float64{0.9, 0.1})
	phases := Separate(r, PhaseOptions{})
	terms := obs.TermEnergy{
		ComputeJ: 10, StallJ: 4, ConstantJ: 6,
		ShmToRFJ: 1, L1ToRFJ: 2, L2ToL1J: 3, DRAMToL2J: 5, InterGPMJ: 8,
	}
	costs := CostPhases(phases, terms)
	var total float64
	for i := range costs {
		total += costs[i].TotalJ()
	}
	if math.Abs(total-terms.Total()) > 1e-9 {
		t.Errorf("apportioned %g J, want %g", total, terms.Total())
	}
	// Compute energy follows busy cycles: phase 0 carries 900 of 1000.
	if got, want := costs[0].Terms.ComputeJ, 9.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("phase 0 compute = %g, want %g", got, want)
	}
	// No saturation anywhere: InterGPMJ falls back to the elapsed
	// share (equal 100-cycle windows → 4 J each).
	if got := costs[0].Terms.InterGPMJ; math.Abs(got-4) > 1e-9 {
		t.Errorf("phase 0 intergpm = %g, want 4", got)
	}
}

func TestCompareIdenticalRunsZeroDeltas(t *testing.T) {
	a := mkRun([]string{"x", "y", "x", "y"}, nil)
	b := mkRun([]string{"x", "y", "x", "y"}, nil)
	c := Compare(a, b, PhaseOptions{})
	if c.Matched != 4 || len(c.Inserted) != 0 || len(c.Removed) != 0 {
		t.Errorf("alignment = %d matched, +%v -%v", c.Matched, c.Inserted, c.Removed)
	}
	for _, d := range c.Kernels {
		if d.DeltaPct() != 0 {
			t.Errorf("kernel %s delta = %g", d.Kernel, d.DeltaPct())
		}
	}
	if c.TotalDeltaPct() != 0 {
		t.Errorf("total delta = %g", c.TotalDeltaPct())
	}
	if br := c.Breaches(0.1); len(br) != 0 {
		t.Errorf("breaches on identical runs: %+v", br)
	}
	// Byte-identical rendering across invocations.
	var r1, r2 bytes.Buffer
	if err := c.WriteMarkdown(&r1); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMarkdown(&r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Error("markdown rendering not byte-identical across invocations")
	}
}

func TestCompareInsertedAndRegressed(t *testing.T) {
	base := mkRun([]string{"x", "y", "x", "y"}, nil)
	opt := mkRun([]string{"x", "pad", "y", "x", "y"}, nil)
	// Slow one x launch down 50%.
	opt.Launches[3].End += 50
	for i := 4; i < len(opt.Launches); i++ {
		opt.Launches[i].Start += 50
		opt.Launches[i].End += 50
	}
	c := Compare(base, opt, PhaseOptions{})
	if c.Matched != 4 {
		t.Errorf("matched %d launches, want 4", c.Matched)
	}
	if !reflect.DeepEqual(c.Inserted, []SeqChange{{Kernel: "pad", Count: 1}}) {
		t.Errorf("inserted = %+v", c.Inserted)
	}
	if len(c.Removed) != 0 {
		t.Errorf("removed = %+v", c.Removed)
	}
	br := c.Breaches(10)
	names := map[string]bool{}
	for _, d := range br {
		names[d.Kernel] = true
	}
	// x regressed 25% (one of two launches 50% longer); pad is new
	// (+Inf). y is unchanged.
	if !names["x"] || !names["pad"] || names["y"] {
		t.Errorf("breaches = %+v", br)
	}
}

func TestAnalyzeMarkdownDeterministic(t *testing.T) {
	r := mkRun([]string{"init", "a", "b", "a", "b", "fin"}, []float64{0.9, 0.2, 0.9, 0.2, 0.9, 0.9})
	r.Episodes = []Episode{{Link: "ring[1]", Start: 150, End: 350, Utilization: 0.92}}
	a := Analyze(r, CycleOptions{}, PhaseOptions{})
	a.Cost(obs.TermEnergy{ComputeJ: 5, StallJ: 3, ConstantJ: 2, InterGPMJ: 1})
	var r1, r2 bytes.Buffer
	if err := a.WriteMarkdown(&r1); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteMarkdown(&r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Error("analysis markdown not byte-identical across invocations")
	}
	var csv bytes.Buffer
	if err := a.WritePhasesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if csv.Len() == 0 {
		t.Error("empty phases CSV")
	}
	var sig1, sig2 bytes.Buffer
	if err := WriteSignature(&sig1, []*Run{r}, CycleOptions{}, PhaseOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSignature(&sig2, []*Run{r}, CycleOptions{}, PhaseOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sig1.Bytes(), sig2.Bytes()) {
		t.Error("signature rendering not byte-identical across invocations")
	}
}
