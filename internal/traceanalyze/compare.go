// Baseline-vs-optimized comparison. Two traced runs of the same
// workload rarely differ only in numbers: an optimization can fuse,
// split, insert, or remove launches, so naive index-by-index diffing
// misattributes every downstream launch. Compare therefore works at
// two levels: per-kernel aggregates matched by name (robust to
// reordering), and a longest-common-subsequence alignment over the
// launch sequences that isolates exactly which launches were inserted
// or removed. Breaches applies a regression threshold to the deltas so
// a CI gate can fail the build on a slowdown.
package traceanalyze

import (
	"math"
	"sort"
)

// KernelDelta compares one kernel's aggregate cost across two runs.
type KernelDelta struct {
	// Kernel is the kernel name.
	Kernel string
	// BaseLaunches and OptLaunches count the kernel's launches per run
	// (zero when the kernel only appears on one side).
	BaseLaunches, OptLaunches int
	// BaseCycles and OptCycles are launch-window cycles summed per run.
	BaseCycles, OptCycles float64
	// BaseBusy, BaseStall, OptBusy, OptStall are the SM-cycle splits.
	BaseBusy, BaseStall, OptBusy, OptStall float64
}

// DeltaPct returns the relative cycle change in percent, positive when
// the optimized run is slower. A kernel new in the optimized run is
// +Inf (pure regression); one removed is -100.
func (d *KernelDelta) DeltaPct() float64 {
	if d.BaseCycles > 0 {
		return (d.OptCycles - d.BaseCycles) / d.BaseCycles * 100
	}
	if d.OptCycles > 0 {
		return math.Inf(1)
	}
	return 0
}

// PhaseDelta compares phase i of the two runs' phase separations.
type PhaseDelta struct {
	// Index is the phase position; negative Base/Opt cycles never
	// occur — a phase missing on one side has Launches == 0 there.
	Index int
	// BaseClass and OptClass are the regimes ("" when that side has
	// fewer phases).
	BaseClass, OptClass PhaseClass
	// BaseLaunches, OptLaunches, BaseCycles, OptCycles are the phase
	// sizes per side.
	BaseLaunches, OptLaunches int
	BaseCycles, OptCycles     float64
}

// DeltaPct returns the relative phase-cycle change in percent.
func (d *PhaseDelta) DeltaPct() float64 {
	if d.BaseCycles > 0 {
		return (d.OptCycles - d.BaseCycles) / d.BaseCycles * 100
	}
	if d.OptCycles > 0 {
		return math.Inf(1)
	}
	return 0
}

// SeqChange is one kernel's inserted/removed launch count from the
// sequence alignment.
type SeqChange struct {
	Kernel string
	Count  int
}

// Comparison is the full baseline-vs-optimized diff of two runs.
type Comparison struct {
	// Base and Opt are the compared runs.
	Base, Opt *Run
	// Kernels holds the per-kernel deltas: first the base run's kernels
	// in first-appearance order, then opt-only kernels in theirs.
	Kernels []KernelDelta
	// Matched counts launches the LCS alignment paired up; Inserted and
	// Removed aggregate the unpaired launches per kernel name, sorted
	// by name.
	Matched  int
	Inserted []SeqChange
	Removed  []SeqChange
	// Phases compares the two runs' phase separations position by
	// position.
	Phases []PhaseDelta
}

// BaseTotal and OptTotal return the end-to-end cycle spans.
func (c *Comparison) BaseTotal() float64 { return c.Base.TotalCycles() }
func (c *Comparison) OptTotal() float64  { return c.Opt.TotalCycles() }

// TotalDeltaPct returns the end-to-end relative change in percent,
// positive when the optimized run is slower.
func (c *Comparison) TotalDeltaPct() float64 {
	if b := c.BaseTotal(); b > 0 {
		return (c.OptTotal() - b) / b * 100
	}
	if c.OptTotal() > 0 {
		return math.Inf(1)
	}
	return 0
}

// Breaches returns the kernel deltas whose regression exceeds
// thresholdPct (only slowdowns count — improvements never breach). A
// positive-infinite delta (kernel new in the optimized run) always
// breaches.
func (c *Comparison) Breaches(thresholdPct float64) []KernelDelta {
	var out []KernelDelta
	for _, d := range c.Kernels {
		if d.DeltaPct() > thresholdPct {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two runs: per-kernel aggregates, LCS launch alignment,
// and position-wise phase deltas (classified with popts).
func Compare(base, opt *Run, popts PhaseOptions) *Comparison {
	c := &Comparison{Base: base, Opt: opt}

	// Per-kernel aggregates, keyed by name, ordered by first
	// appearance (base first, then opt-only kernels).
	index := map[string]int{}
	at := func(kernel string) *KernelDelta {
		i, ok := index[kernel]
		if !ok {
			i = len(c.Kernels)
			index[kernel] = i
			c.Kernels = append(c.Kernels, KernelDelta{Kernel: kernel})
		}
		return &c.Kernels[i]
	}
	for i := range base.Launches {
		l := &base.Launches[i]
		d := at(l.Kernel)
		d.BaseLaunches++
		d.BaseCycles += l.Cycles()
		d.BaseBusy += l.Busy
		d.BaseStall += l.Stall
	}
	for i := range opt.Launches {
		l := &opt.Launches[i]
		d := at(l.Kernel)
		d.OptLaunches++
		d.OptCycles += l.Cycles()
		d.OptBusy += l.Busy
		d.OptStall += l.Stall
	}

	// LCS alignment over the kernel-name sequences.
	a := make([]string, len(base.Launches))
	for i := range base.Launches {
		a[i] = base.Launches[i].Kernel
	}
	b := make([]string, len(opt.Launches))
	for i := range opt.Launches {
		b[i] = opt.Launches[i].Kernel
	}
	matchedA, matchedB := lcsAlign(a, b)
	c.Matched = len(matchedA)
	c.Removed = unmatchedCounts(a, matchedA)
	c.Inserted = unmatchedCounts(b, matchedB)

	// Position-wise phase deltas.
	bp := Separate(base, popts)
	op := Separate(opt, popts)
	n := len(bp)
	if len(op) > n {
		n = len(op)
	}
	for i := 0; i < n; i++ {
		d := PhaseDelta{Index: i}
		if i < len(bp) {
			d.BaseClass = bp[i].Class
			d.BaseLaunches = bp[i].Launches
			d.BaseCycles = bp[i].Cycles()
		}
		if i < len(op) {
			d.OptClass = op[i].Class
			d.OptLaunches = op[i].Launches
			d.OptCycles = op[i].Cycles()
		}
		c.Phases = append(c.Phases, d)
	}
	return c
}

// lcsAlign computes a longest common subsequence of a and b and
// returns the matched index sets (sorted ascending). Standard dynamic
// program; launch sequences are short enough that O(len(a)·len(b))
// table space is immaterial.
func lcsAlign(a, b []string) (matchedA, matchedB map[int]bool) {
	n, m := len(a), len(b)
	matchedA, matchedB = map[int]bool{}, map[int]bool{}
	if n == 0 || m == 0 {
		return matchedA, matchedB
	}
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	// Greedy earliest-match traceback: deterministic and stable under
	// equal-length alternatives.
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case a[i] == b[j] && dp[i][j] == dp[i+1][j+1]+1:
			matchedA[i] = true
			matchedB[j] = true
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return matchedA, matchedB
}

// unmatchedCounts aggregates the launches the alignment left unpaired,
// per kernel name, sorted by name.
func unmatchedCounts(seq []string, matched map[int]bool) []SeqChange {
	counts := map[string]int{}
	for i, k := range seq {
		if !matched[i] {
			counts[k]++
		}
	}
	if len(counts) == 0 {
		return nil
	}
	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]SeqChange, len(names))
	for i, k := range names {
		out[i] = SeqChange{Kernel: k, Count: counts[k]}
	}
	return out
}
