// Repeating-kernel-cycle detection. Iterative workloads (training
// steps, decode loops, solver sweeps) launch the same kernel sequence
// over and over; the period of that repetition is the natural unit for
// per-iteration cost accounting. DetectCycle recovers it from the
// launch sequence alone — no annotations — by searching every
// candidate period for the longest self-matching stretch and keeping
// the one that explains the most launches.
package traceanalyze

// CycleOptions tunes detection. The zero value is ready to use.
type CycleOptions struct {
	// MinIterations is the fewest repetitions that count as a cycle
	// (default 2 — a sequence seen once is not repeating).
	MinIterations int
}

// IterStats is the cost of one iteration of a detected cycle.
type IterStats struct {
	// Index is the iteration number, 0-based.
	Index int
	// FirstSeq and LastSeq are the launch IDs bounding the iteration.
	FirstSeq, LastSeq int
	// StartCycles and EndCycles bound the iteration on the global clock.
	StartCycles, EndCycles float64
	// Cycles is the iteration's wall span (EndCycles - StartCycles).
	Cycles float64
	// Busy and Stall are SM-cycles summed over the iteration's launches.
	Busy, Stall float64
	// SatCycles is how much of the iteration's wall span overlapped a
	// link-saturation episode (any link).
	SatCycles float64
}

// BusyFraction returns busy/(busy+stall) for the iteration.
func (it *IterStats) BusyFraction() float64 {
	if tot := it.Busy + it.Stall; tot > 0 {
		return it.Busy / tot
	}
	return 1
}

// SatFraction returns the share of the iteration's wall span spent
// with at least one link saturated.
func (it *IterStats) SatFraction() float64 {
	if it.Cycles > 0 {
		return it.SatCycles / it.Cycles
	}
	return 0
}

// MemberStat aggregates one member kernel of a cycle across all
// iterations, listed in canonical (minimal-rotation) order.
type MemberStat struct {
	// Kernel is the member's name.
	Kernel string
	// Count is how many launches aggregated here (== Iterations).
	Count int
	// Cycles, Busy, Stall are totals across those launches.
	Cycles, Busy, Stall float64
}

// MeanCycles returns the member's average launch-window length.
func (m *MemberStat) MeanCycles() float64 {
	if m.Count > 0 {
		return m.Cycles / float64(m.Count)
	}
	return 0
}

// Cycle is a detected repeating launch pattern.
type Cycle struct {
	// Period is the number of launches per iteration.
	Period int
	// Start is the launch index where the first full iteration begins.
	Start int
	// Iterations is how many complete repetitions were found.
	Iterations int
	// Members is the member kernel sequence in canonical
	// (minimal-rotation) order; Rotation is the offset of that origin
	// within the detected sequence, so the launch realizing Members[j]
	// in iteration k is Start + k*Period + (Rotation+j)%Period.
	Members  []string
	Rotation int
	// Signature hashes the canonical member sequence — equal across
	// runs that repeat the same kernels in the same cyclic order, even
	// when detection locked on at different offsets.
	Signature uint64
	// Iters holds per-iteration cost stats in iteration order.
	Iters []IterStats
	// MemberStats aggregates each member across iterations, in
	// canonical order.
	MemberStats []MemberStat
}

// Coverage returns how many launches the cycle explains.
func (c *Cycle) Coverage() int { return c.Period * c.Iterations }

// DetectCycle finds the dominant repeating kernel cycle in the run's
// launch sequence, or nil when nothing repeats at least MinIterations
// times. The search considers every period p and every maximal stretch
// where the sequence equals itself shifted by p, and keeps the
// candidate covering the most launches; ties prefer the smaller period
// (the primitive cycle over its own multiples), then the earlier
// start.
func DetectCycle(r *Run, opts CycleOptions) *Cycle {
	minIter := opts.MinIterations
	if minIter < 2 {
		minIter = 2
	}
	n := len(r.Launches)
	if n < 2 {
		return nil
	}
	seq := make([]string, n)
	for i := range r.Launches {
		seq[i] = r.Launches[i].Kernel
	}

	best := struct {
		coverage, period, start, iters int
	}{}
	for p := 1; p <= n/minIter; p++ {
		// Walk the self-match predicate seq[i] == seq[i-p]; each maximal
		// run of matches [a, b] witnesses the region [a-p, b] repeating
		// with period p.
		runStart := -1
		flush := func(end int) { // end = last matching index
			if runStart < 0 {
				return
			}
			region := end - (runStart - p) + 1
			iters := region / p
			if iters >= minIter {
				cov := iters * p
				start := runStart - p
				if cov > best.coverage ||
					(cov == best.coverage && best.coverage > 0 &&
						(p < best.period || (p == best.period && start < best.start))) {
					best.coverage, best.period, best.start, best.iters = cov, p, start, iters
				}
			}
			runStart = -1
		}
		for i := p; i < n; i++ {
			if seq[i] == seq[i-p] {
				if runStart < 0 {
					runStart = i
				}
			} else {
				flush(i - 1)
			}
		}
		flush(n - 1)
	}
	if best.coverage == 0 {
		return nil
	}

	detected := seq[best.start : best.start+best.period]
	canonical, rotation, sig := CanonicalCycle(detected)
	c := &Cycle{
		Period:     best.period,
		Start:      best.start,
		Iterations: best.iters,
		Members:    canonical,
		Rotation:   rotation,
		Signature:  sig,
	}

	sat := r.satSpans()
	c.Iters = make([]IterStats, best.iters)
	for k := 0; k < best.iters; k++ {
		first := best.start + k*best.period
		last := first + best.period - 1
		it := IterStats{
			Index:       k,
			FirstSeq:    r.Launches[first].Seq,
			LastSeq:     r.Launches[last].Seq,
			StartCycles: r.Launches[first].Start,
			EndCycles:   r.Launches[last].End,
		}
		it.Cycles = it.EndCycles - it.StartCycles
		for i := first; i <= last; i++ {
			it.Busy += r.Launches[i].Busy
			it.Stall += r.Launches[i].Stall
		}
		it.SatCycles = overlapCycles(sat, it.StartCycles, it.EndCycles)
		c.Iters[k] = it
	}

	c.MemberStats = make([]MemberStat, best.period)
	for j := 0; j < best.period; j++ {
		off := (rotation + j) % best.period
		m := MemberStat{Kernel: canonical[j]}
		for k := 0; k < best.iters; k++ {
			l := &r.Launches[best.start+k*best.period+off]
			m.Count++
			m.Cycles += l.Cycles()
			m.Busy += l.Busy
			m.Stall += l.Stall
		}
		c.MemberStats[j] = m
	}
	return c
}
