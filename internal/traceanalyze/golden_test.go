package traceanalyze

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// goldenApp is a synthetic workload with a known launch structure: a
// compute-bound prefill (two FFMA-heavy launches), then six iterations
// of a memory-bound (attn, mlp) pair built from dependent random
// loads. The analytics must recover exactly this shape from a traced
// simulation.
func goldenApp() *trace.App {
	regions := []trace.Region{
		{Name: "kv", Bytes: 8 << 20},
		{Name: "weights", Bytes: 8 << 20},
	}
	prefill := &trace.Kernel{
		Name: "prefill", Grid: 256, WarpsPerCTA: 8, Iters: 2,
		Body: []trace.Inst{
			{Op: isa.OpLoadShared},
			{Op: isa.OpFFMA32, Times: 40},
			{Op: isa.OpStoreShared},
			{Op: isa.OpBarrier},
		},
	}
	attn := &trace.Kernel{
		Name: "attn", Grid: 256, WarpsPerCTA: 8, Iters: 2,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom, Lines: 16, Chase: true}, Times: 4},
			{Op: isa.OpFFMA32, Times: 2},
		},
	}
	mlp := &trace.Kernel{
		Name: "mlp", Grid: 256, WarpsPerCTA: 8, Iters: 2,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatRandom, Lines: 16, Chase: true}, Times: 4},
			{Op: isa.OpFMul32, Times: 2},
		},
	}
	launches := []trace.Launch{{Kernel: prefill, Count: 2}}
	for i := 0; i < 6; i++ {
		launches = append(launches, trace.Launch{Kernel: attn}, trace.Launch{Kernel: mlp})
	}
	return &trace.App{Name: "golden", Category: trace.CategoryMemory, Regions: regions, Launches: launches}
}

func simulateGolden(t *testing.T) *Run {
	t.Helper()
	res, err := sim.Simulate(context.Background(), sim.MultiGPM(4, sim.BW2x), goldenApp(), sim.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("simulation carried no trace despite sim.WithTrace")
	}
	return FromTrace("golden on R4", res.Trace)
}

// TestGoldenRoundTrip is the acceptance test of the analytics engine:
// a traced simulation with a known repeating launch structure must
// yield the correct cycle (period and member kernels), a phase
// separation that labels the memory-bound segment, and a
// zero-delta, byte-identical comparison between two independent runs
// of the same configuration.
func TestGoldenRoundTrip(t *testing.T) {
	run := simulateGolden(t)
	if len(run.Launches) != 14 {
		t.Fatalf("traced %d launches, want 14 (2 prefill + 6x(attn,mlp))", len(run.Launches))
	}

	// Cycle detection: the dominant repetition is the (attn, mlp) pair
	// starting after the prefill launches.
	c := DetectCycle(run, CycleOptions{})
	if c == nil {
		t.Fatal("no cycle detected")
	}
	if c.Period != 2 || c.Iterations != 6 || c.Start != 2 {
		t.Fatalf("cycle = period %d, %d iterations from launch %d; want period 2, 6 iterations from launch 2",
			c.Period, c.Iterations, c.Start)
	}
	if !reflect.DeepEqual(c.Members, []string{"attn", "mlp"}) {
		t.Fatalf("cycle members = %v, want [attn mlp]", c.Members)
	}
	for i := range c.Iters {
		if c.Iters[i].Cycles <= 0 {
			t.Errorf("iteration %d has non-positive span %g", i, c.Iters[i].Cycles)
		}
	}

	// Phase separation: the prefill segment is compute-bound, the
	// attn/mlp segment memory-bound.
	phases := Separate(run, PhaseOptions{})
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(phases), phases)
	}
	if phases[0].Class != ComputeBound || phases[0].FirstSeq != 0 || phases[0].LastSeq != 1 {
		t.Errorf("phase 0 = %s over seq %d..%d, want compute-bound over 0..1",
			phases[0].Class, phases[0].FirstSeq, phases[0].LastSeq)
	}
	if phases[1].Class != MemoryBound || phases[1].FirstSeq != 2 || phases[1].LastSeq != 13 {
		t.Errorf("phase 1 = %s over seq %d..%d, want memory-bound over 2..13",
			phases[1].Class, phases[1].FirstSeq, phases[1].LastSeq)
	}

	// Independent re-simulation: exact zero deltas, no alignment noise.
	run2 := simulateGolden(t)
	cmp := Compare(run, run2, PhaseOptions{})
	if cmp.Matched != 14 || len(cmp.Inserted) != 0 || len(cmp.Removed) != 0 {
		t.Fatalf("alignment = %d matched, +%v -%v; want 14 clean matches",
			cmp.Matched, cmp.Inserted, cmp.Removed)
	}
	if cmp.TotalDeltaPct() != 0 {
		t.Errorf("total delta = %g%%, want exactly 0", cmp.TotalDeltaPct())
	}
	for _, d := range cmp.Kernels {
		if d.DeltaPct() != 0 || d.BaseCycles != d.OptCycles {
			t.Errorf("kernel %s: base %g vs opt %g cycles", d.Kernel, d.BaseCycles, d.OptCycles)
		}
	}
	if br := cmp.Breaches(0.0001); len(br) != 0 {
		t.Errorf("breaches at 0.0001%% threshold on identical configs: %+v", br)
	}

	// Repeated rendering is byte-identical — markdown, CSV, and
	// signature alike.
	render := func() (md, csv, sig []byte) {
		var m, c2, s bytes.Buffer
		if err := cmp.WriteMarkdown(&m); err != nil {
			t.Fatal(err)
		}
		if err := cmp.WriteCSV(&c2); err != nil {
			t.Fatal(err)
		}
		if err := WriteSignature(&s, []*Run{run, run2}, CycleOptions{}, PhaseOptions{}); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), c2.Bytes(), s.Bytes()
	}
	md1, csv1, sig1 := render()
	md2, csv2, sig2 := render()
	if !bytes.Equal(md1, md2) || !bytes.Equal(csv1, csv2) || !bytes.Equal(sig1, sig2) {
		t.Error("repeated rendering is not byte-identical")
	}

	// The two runs' signature blocks must agree line for line apart
	// from nothing — same config, same simulator, same bytes.
	var s1, s2 bytes.Buffer
	if err := WriteSignature(&s1, []*Run{run}, CycleOptions{}, PhaseOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSignature(&s2, []*Run{run2}, CycleOptions{}, PhaseOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Errorf("independent runs sign differently:\n%s\nvs\n%s", s1.String(), s2.String())
	}
}
