// Package traceanalyze turns the simulator's timeline traces into a
// machine-checkable analysis: automatic repeating-kernel-cycle
// detection, compute-vs-memory phase separation, and deterministic
// baseline-vs-optimized comparison. It is the regression-hunting
// instrument over the obs v2 trace schema — what a human would
// otherwise eyeball in Perfetto, reduced to tables a CI gate can diff.
//
// The package reads both persisted trace forms: the exact cycles-domain
// obs.Trace JSON (schema-versioned, attached to sim.Result by
// sim.WithTrace) and the rendered Chrome trace_event documents the
// -trace CLI flags write (single- or multi-point, plain or gzipped —
// readers sniff the gzip magic, never the extension). Both load into
// one analysis model, Run, so every downstream pass is agnostic to
// which file it came from.
//
// Every report this package emits is deterministic: launch and kernel
// orders are first-appearance orders, never map iteration; floats
// render through fixed formats. Two invocations over the same inputs
// produce byte-identical bytes, which is what makes the reports
// diffable regression baselines (see scripts/trace_regress.sh).
package traceanalyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"gpujoule/internal/obs"
)

// Run is one traced simulation in analysis form: the launch timeline
// with per-launch busy/stall aggregates and the link-saturation
// episodes, all on the exact cycles clock.
type Run struct {
	// Name labels the run ("<workload> on <config>" for CLI-written
	// traces; the file stem for bare obs.Trace documents).
	Name string
	// ClockHz converts cycles to wall time (sim.ClockHz for traces this
	// repository writes).
	ClockHz float64
	// Launches is the launch sequence in launch order.
	Launches []Launch
	// Episodes lists link-saturation episodes in file order.
	Episodes []Episode
}

// Launch is one kernel launch with its module-aggregated activity.
type Launch struct {
	// Seq is the stable launch ID: the launch's index in the run.
	Seq int
	// Kernel is the kernel name — the launch's signature symbol.
	Kernel string
	// Start and End bound the launch window on the global clock.
	Start, End float64
	// Busy and Stall are SM-cycles summed over all modules' phases.
	Busy, Stall float64
	// GPMs holds the per-module split when the source carried it.
	GPMs []GPMPhase
}

// Cycles returns the launch's window length.
func (l *Launch) Cycles() float64 { return l.End - l.Start }

// BusyFraction returns busy/(busy+stall), or 1 when the launch
// recorded no SM activity (an empty window stalls nothing).
func (l *Launch) BusyFraction() float64 {
	if tot := l.Busy + l.Stall; tot > 0 {
		return l.Busy / tot
	}
	return 1
}

// GPMPhase is one module's busy/stall split within a launch.
type GPMPhase struct {
	GPM         int
	Busy, Stall float64
}

// Episode is one link-saturation episode.
type Episode struct {
	Link        string
	Start, End  float64
	Utilization float64
}

// StartCycles returns the first launch's start (0 for an empty run).
func (r *Run) StartCycles() float64 {
	if len(r.Launches) == 0 {
		return 0
	}
	return r.Launches[0].Start
}

// EndCycles returns the latest launch end (0 for an empty run).
func (r *Run) EndCycles() float64 {
	end := 0.0
	for i := range r.Launches {
		if r.Launches[i].End > end {
			end = r.Launches[i].End
		}
	}
	return end
}

// TotalCycles returns the end-to-end launch-window span of the run.
func (r *Run) TotalCycles() float64 { return r.EndCycles() - r.StartCycles() }

// span is a half-open cycle interval.
type span struct{ start, end float64 }

// satSpans merges the run's episodes (across all links) into a sorted,
// disjoint union — the cycle ranges during which at least one fabric
// link was saturated.
func (r *Run) satSpans() []span {
	if len(r.Episodes) == 0 {
		return nil
	}
	spans := make([]span, 0, len(r.Episodes))
	for i := range r.Episodes {
		e := &r.Episodes[i]
		if e.End > e.Start {
			spans = append(spans, span{e.Start, e.End})
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].end < spans[j].end
	})
	merged := spans[:0]
	for _, s := range spans {
		if n := len(merged); n > 0 && s.start <= merged[n-1].end {
			if s.end > merged[n-1].end {
				merged[n-1].end = s.end
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// overlapCycles returns how many cycles of [start, end) are covered by
// the sorted, disjoint spans.
func overlapCycles(spans []span, start, end float64) float64 {
	total := 0.0
	for _, s := range spans {
		if s.end <= start {
			continue
		}
		if s.start >= end {
			break
		}
		lo, hi := s.start, s.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		total += hi - lo
	}
	return total
}

// FromTrace converts one exact cycles-domain trace into a Run.
func FromTrace(name string, t *obs.Trace) *Run {
	r := &Run{Name: name, ClockHz: t.ClockHz}
	r.Launches = make([]Launch, len(t.Launches))
	for i := range t.Launches {
		tl := &t.Launches[i]
		l := Launch{Seq: i, Kernel: tl.Kernel, Start: tl.StartCycles, End: tl.EndCycles}
		for _, p := range tl.GPMs {
			l.Busy += p.BusyCycles
			l.Stall += p.StallCycles
			l.GPMs = append(l.GPMs, GPMPhase{GPM: p.GPM, Busy: p.BusyCycles, Stall: p.StallCycles})
		}
		r.Launches[i] = l
	}
	for i := range t.Episodes {
		e := &t.Episodes[i]
		r.Episodes = append(r.Episodes, Episode{
			Link: e.Link, Start: e.StartCycles, End: e.EndCycles, Utilization: e.Utilization,
		})
	}
	return r
}

// LoadFile reads a trace file — exact obs.Trace JSON or a rendered
// Chrome trace_event document, plain or gzipped — and returns its runs
// in file order (one per traced point for multi-point Chrome files).
// name labels single-run exact traces; pass the file stem.
func LoadFile(path, name string) ([]*Run, error) {
	rc, err := obs.OpenAuto(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, fmt.Errorf("traceanalyze: reading %s: %w", path, err)
	}

	// Format detection on the top-level keys: Chrome documents carry
	// traceEvents; exact traces carry launches (possibly nested under
	// "trace" for a full sim.Result export).
	var probe struct {
		TraceEvents json.RawMessage `json:"traceEvents"`
		Launches    json.RawMessage `json:"launches"`
		Trace       json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("traceanalyze: parsing %s: %w", path, err)
	}
	if probe.TraceEvents != nil {
		runs, err := parseChrome(data)
		if err != nil {
			return nil, fmt.Errorf("traceanalyze: parsing %s: %w", path, err)
		}
		return runs, nil
	}

	var t obs.Trace
	raw := data
	if probe.Launches == nil && probe.Trace != nil {
		raw = probe.Trace
	}
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("traceanalyze: parsing %s: %w", path, err)
	}
	if len(t.Launches) == 0 {
		return nil, fmt.Errorf("traceanalyze: %s holds no launches (want an obs.Trace or Chrome trace_event document)", path)
	}
	return []*Run{FromTrace(name, &t)}, nil
}

// chromeEvent mirrors the subset of the trace_event schema the parser
// consumes.
type chromeEvent struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	Ts   float64                    `json:"ts"`
	Dur  float64                    `json:"dur"`
	Pid  int                        `json:"pid"`
	Tid  int                        `json:"tid"`
	Args map[string]json.RawMessage `json:"args"`
}

// argString decodes a string arg, empty when absent or mistyped.
func (e *chromeEvent) argString(key string) string {
	var s string
	if raw, ok := e.Args[key]; ok {
		json.Unmarshal(raw, &s)
	}
	return s
}

// argFloat decodes a numeric arg; ok reports presence and validity.
func (e *chromeEvent) argFloat(key string) (float64, bool) {
	raw, ok := e.Args[key]
	if !ok {
		return 0, false
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, false
	}
	return v, true
}

// parseChrome reconstructs runs from a rendered Chrome trace_event
// document: one run per process track, converting microsecond
// timestamps back to cycles via the clock recorded in otherData (older
// files without it parse with timestamps left in microseconds,
// ClockHz = 1e6 — internally consistent, so every derived ratio and
// comparison still holds).
func parseChrome(data []byte) ([]*Run, error) {
	var doc struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		OtherData   map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	clockHz := 1e6 // 1 cycle == 1 µs when the file carries no clock
	if v, ok := doc.OtherData["clock_hz"].(float64); ok && v > 0 {
		clockHz = v
	}
	cyclesPerUs := clockHz / 1e6

	type builder struct {
		run     *Run
		gpmTid  map[int]int    // tid → GPM index
		linkTid map[int]string // tid → link name
	}
	builders := map[int]*builder{}
	var pids []int
	get := func(pid int) *builder {
		b, ok := builders[pid]
		if !ok {
			b = &builder{
				run:     &Run{Name: fmt.Sprintf("point %d", pid), ClockHz: clockHz},
				gpmTid:  map[int]int{},
				linkTid: map[int]string{},
			}
			builders[pid] = b
			pids = append(pids, pid)
		}
		return b
	}

	// First pass: metadata names the tracks.
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph != "M" {
			continue
		}
		b := get(ev.Pid)
		label := ev.argString("name")
		switch ev.Name {
		case "process_name":
			b.run.Name = label
		case "thread_name":
			switch {
			case strings.HasPrefix(label, "GPM "):
				var g int
				if _, err := fmt.Sscanf(label, "GPM %d", &g); err == nil {
					b.gpmTid[ev.Tid] = g
				}
			case strings.HasPrefix(label, "link "):
				b.linkTid[ev.Tid] = strings.TrimPrefix(label, "link ")
			}
		}
	}

	// Second pass: duration events become launches, GPM phases, and
	// saturation episodes. GPM phases attach by the stable launch ID
	// when present, by window match otherwise (pre-launch-ID files).
	type pendingPhase struct {
		ev     *chromeEvent
		gpm    int
		launch int // -1 when the file carries no launch ID
	}
	pendingByPid := map[int][]pendingPhase{}
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph != "X" {
			continue
		}
		b := get(ev.Pid)
		switch {
		case ev.Tid == 0:
			l := Launch{
				Seq:    len(b.run.Launches),
				Kernel: ev.Name,
				Start:  ev.Ts * cyclesPerUs,
				End:    (ev.Ts + ev.Dur) * cyclesPerUs,
			}
			if v, ok := ev.argFloat("launch"); ok {
				l.Seq = int(v)
			}
			b.run.Launches = append(b.run.Launches, l)
		case b.linkTid[ev.Tid] != "":
			util, _ := ev.argFloat("utilization")
			b.run.Episodes = append(b.run.Episodes, Episode{
				Link:        b.linkTid[ev.Tid],
				Start:       ev.Ts * cyclesPerUs,
				End:         (ev.Ts + ev.Dur) * cyclesPerUs,
				Utilization: util,
			})
		default:
			if g, ok := b.gpmTid[ev.Tid]; ok {
				p := pendingPhase{ev: ev, gpm: g, launch: -1}
				if v, ok := ev.argFloat("launch"); ok {
					p.launch = int(v)
				}
				pendingByPid[ev.Pid] = append(pendingByPid[ev.Pid], p)
			}
		}
	}

	var runs []*Run
	sort.Ints(pids)
	for _, pid := range pids {
		b := builders[pid]
		run := b.run
		sort.SliceStable(run.Launches, func(i, j int) bool { return run.Launches[i].Seq < run.Launches[j].Seq })
		// Re-sequence in case the file's launch IDs were sparse.
		bySeq := map[int]int{}
		for i := range run.Launches {
			bySeq[run.Launches[i].Seq] = i
			run.Launches[i].Seq = i
		}
		for _, p := range pendingByPid[pid] {
			idx := -1
			if p.launch >= 0 {
				if i, ok := bySeq[p.launch]; ok {
					idx = i
				}
			} else {
				start := p.ev.Ts * cyclesPerUs
				for i := range run.Launches {
					if run.Launches[i].Start == start && run.Launches[i].End == (p.ev.Ts+p.ev.Dur)*cyclesPerUs {
						idx = i
						break
					}
				}
			}
			if idx < 0 {
				continue
			}
			busy, _ := p.ev.argFloat("busy_cycles")
			stall, _ := p.ev.argFloat("stall_cycles")
			l := &run.Launches[idx]
			l.Busy += busy
			l.Stall += stall
			l.GPMs = append(l.GPMs, GPMPhase{GPM: p.gpm, Busy: busy, Stall: stall})
		}
		for i := range run.Launches {
			l := &run.Launches[i]
			sort.Slice(l.GPMs, func(a, b int) bool { return l.GPMs[a].GPM < l.GPMs[b].GPM })
		}
		if len(run.Launches) > 0 {
			runs = append(runs, run)
		}
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no traced points found")
	}
	return runs, nil
}
