package traceanalyze

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gpujoule/internal/obs"
)

// testTrace is an exact cycles-domain trace with a repeating launch
// pair, two GPMs, and one saturation episode.
func testTrace() *obs.Trace {
	launch := func(kernel string, start, end, busy0, stall0, busy1, stall1 float64) obs.TraceLaunch {
		return obs.TraceLaunch{
			Kernel: kernel, StartCycles: start, EndCycles: end,
			GPMs: []obs.TraceGPMPhase{
				{GPM: 0, BusyCycles: busy0, StallCycles: stall0},
				{GPM: 1, BusyCycles: busy1, StallCycles: stall1},
			},
		}
	}
	return &obs.Trace{
		SchemaVersion: obs.SchemaVersion,
		ClockHz:       1e9,
		Launches: []obs.TraceLaunch{
			launch("warm", 0, 1000, 900, 100, 850, 150),
			launch("a", 1000, 2000, 200, 800, 250, 750),
			launch("b", 2000, 2500, 450, 50, 400, 100),
			launch("a", 2500, 3500, 210, 790, 240, 760),
			launch("b", 3500, 4000, 440, 60, 410, 90),
		},
		Episodes: []obs.LinkEpisode{
			{Link: "ring[0]", StartCycles: 1200, EndCycles: 1800, Utilization: 0.93},
		},
	}
}

func TestFromTrace(t *testing.T) {
	r := FromTrace("pt", testTrace())
	if len(r.Launches) != 5 || r.ClockHz != 1e9 {
		t.Fatalf("run = %d launches at %g Hz", len(r.Launches), r.ClockHz)
	}
	l := r.Launches[1]
	if l.Kernel != "a" || l.Busy != 450 || l.Stall != 1550 || len(l.GPMs) != 2 {
		t.Errorf("launch 1 = %+v", l)
	}
	if r.TotalCycles() != 4000 {
		t.Errorf("total cycles = %g", r.TotalCycles())
	}
	if len(r.Episodes) != 1 || r.Episodes[0].Link != "ring[0]" {
		t.Errorf("episodes = %+v", r.Episodes)
	}
}

// TestChromeRoundTrip renders an exact trace to the Chrome form and
// parses it back: the reconstructed run must match the direct
// conversion launch for launch, on the exact cycles clock.
func TestChromeRoundTrip(t *testing.T) {
	tr := testTrace()
	want := FromTrace("stream on R4", tr)

	dir := t.TempDir()
	for _, name := range []string{"trace.json", "trace.json.gz"} {
		path := filepath.Join(dir, name)
		if err := tr.WriteChromeFile(path, "stream on R4"); err != nil {
			t.Fatal(err)
		}
		runs, err := LoadFile(path, "ignored")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(runs) != 1 {
			t.Fatalf("%s: got %d runs", name, len(runs))
		}
		got := runs[0]
		if got.Name != want.Name {
			t.Errorf("%s: name = %q, want %q", name, got.Name, want.Name)
		}
		if got.ClockHz != want.ClockHz {
			t.Errorf("%s: clock = %g, want %g", name, got.ClockHz, want.ClockHz)
		}
		if len(got.Launches) != len(want.Launches) {
			t.Fatalf("%s: %d launches, want %d", name, len(got.Launches), len(want.Launches))
		}
		for i := range want.Launches {
			w, g := want.Launches[i], got.Launches[i]
			if g.Kernel != w.Kernel || g.Seq != w.Seq {
				t.Errorf("%s: launch %d = %s/%d, want %s/%d", name, i, g.Kernel, g.Seq, w.Kernel, w.Seq)
			}
			for label, pair := range map[string][2]float64{
				"start": {g.Start, w.Start}, "end": {g.End, w.End},
				"busy": {g.Busy, w.Busy}, "stall": {g.Stall, w.Stall},
			} {
				if math.Abs(pair[0]-pair[1]) > 1e-6 {
					t.Errorf("%s: launch %d %s = %g, want %g", name, i, label, pair[0], pair[1])
				}
			}
			if len(g.GPMs) != len(w.GPMs) {
				t.Errorf("%s: launch %d has %d GPM phases, want %d", name, i, len(g.GPMs), len(w.GPMs))
			}
		}
		if len(got.Episodes) != 1 || got.Episodes[0].Link != "ring[0]" {
			t.Fatalf("%s: episodes = %+v", name, got.Episodes)
		}
		if math.Abs(got.Episodes[0].Start-1200) > 1e-6 || math.Abs(got.Episodes[0].End-1800) > 1e-6 {
			t.Errorf("%s: episode span = [%g, %g), want [1200, 1800)", name, got.Episodes[0].Start, got.Episodes[0].End)
		}
		if got.Episodes[0].Utilization != 0.93 {
			t.Errorf("%s: episode utilization = %g", name, got.Episodes[0].Utilization)
		}
	}
}

// TestChromeMultiPoint checks that a multi-point Chrome file yields
// one run per traced point, in pid order.
func TestChromeMultiPoint(t *testing.T) {
	tr := testTrace()
	path := filepath.Join(t.TempDir(), "sweep.json.gz")
	err := obs.WriteChromeTracesFile(path, []obs.PointTrace{
		{Name: "stream on R1", Trace: tr},
		{Name: "stream on R4", Trace: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := LoadFile(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if runs[0].Name != "stream on R1" || runs[1].Name != "stream on R4" {
		t.Errorf("run names = %q, %q", runs[0].Name, runs[1].Name)
	}
}

// TestLoadFileExactTrace checks exact obs.Trace documents load, plain
// and gzipped, including sim.Result-embedded form.
func TestLoadFileExactTrace(t *testing.T) {
	tr := testTrace()
	dir := t.TempDir()
	writeJSON := func(name string, v any) string {
		path := filepath.Join(dir, name)
		if err := obs.WriteFileAtomic(path, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(v)
		}); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for _, path := range []string{
		writeJSON("exact.json", tr),
		writeJSON("exact.json.gz", tr),
		writeJSON("result.json", map[string]any{"cycles": 4000, "trace": tr}),
	} {
		runs, err := LoadFile(path, "mylabel")
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(runs) != 1 || runs[0].Name != "mylabel" || len(runs[0].Launches) != 5 {
			t.Errorf("%s: runs = %+v", path, runs)
		}
	}

	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte(`{"points":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(junk, "x"); err == nil {
		t.Error("trace-less document loaded without error")
	}
}

// TestAnalyzeOverChromeFile runs the full analytics over a rendered
// file: cycle detection and phase separation must survive the Chrome
// round trip.
func TestAnalyzeOverChromeFile(t *testing.T) {
	tr := testTrace()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteChromeFile(path, "pt"); err != nil {
		t.Fatal(err)
	}
	runs, err := LoadFile(path, "pt")
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(runs[0], CycleOptions{}, PhaseOptions{})
	if a.Cycle == nil || a.Cycle.Period != 2 || a.Cycle.Iterations != 2 {
		t.Fatalf("cycle = %+v", a.Cycle)
	}
	if len(a.Phases) < 2 || a.Phases[0].Class != ComputeBound {
		t.Fatalf("phases = %+v", a.Phases)
	}
}
