// Compute-vs-memory phase separation. The paper's energy story hinges
// on which regime the GPU is in: compute-bound stretches are dominated
// by SM datapath energy, memory-bound stretches by stall time and
// data-movement energy, and inter-module traffic shows up as link
// saturation. Separate classifies each launch from its busy/stall
// split and link-saturation residency and merges adjacent launches of
// the same regime into phases; CostPhases then apportions a run's
// energy-attribution terms onto those phases, so each phase carries a
// joule figure driven by the term's own physical driver (busy cycles
// for datapath terms, stall cycles for memory terms, saturated cycles
// for the inter-GPM term, elapsed time for the constant term).
package traceanalyze

import "gpujoule/internal/obs"

// PhaseClass labels a phase's bound regime.
type PhaseClass string

const (
	// ComputeBound phases keep the SMs mostly busy.
	ComputeBound PhaseClass = "compute-bound"
	// MemoryBound phases are dominated by stalls or link saturation.
	MemoryBound PhaseClass = "memory-bound"
)

// PhaseOptions tunes classification. The zero value applies the
// defaults.
type PhaseOptions struct {
	// BusyThreshold: a launch whose busy fraction falls below it is
	// memory-bound (default 0.5).
	BusyThreshold float64
	// SatThreshold: a launch whose window overlaps link-saturation
	// episodes for at least this fraction is memory-bound regardless of
	// its busy split — the stall is on the fabric (default 0.5).
	SatThreshold float64
}

func (o PhaseOptions) withDefaults() PhaseOptions {
	if o.BusyThreshold <= 0 {
		o.BusyThreshold = 0.5
	}
	if o.SatThreshold <= 0 {
		o.SatThreshold = 0.5
	}
	return o
}

// Phase is a maximal stretch of same-regime launches.
type Phase struct {
	// Class is the phase's bound regime.
	Class PhaseClass
	// FirstSeq and LastSeq are the launch IDs bounding the phase.
	FirstSeq, LastSeq int
	// StartCycles and EndCycles bound the phase on the global clock.
	StartCycles, EndCycles float64
	// Launches counts the launches merged into the phase.
	Launches int
	// Busy and Stall are SM-cycles summed over those launches.
	Busy, Stall float64
	// SatCycles is the phase's wall-span overlap with link-saturation
	// episodes.
	SatCycles float64
	// Kernels lists the distinct member kernels in first-appearance
	// order.
	Kernels []string
}

// Cycles returns the phase's wall span.
func (p *Phase) Cycles() float64 { return p.EndCycles - p.StartCycles }

// BusyFraction returns busy/(busy+stall) over the phase.
func (p *Phase) BusyFraction() float64 {
	if tot := p.Busy + p.Stall; tot > 0 {
		return p.Busy / tot
	}
	return 1
}

// SatFraction returns the share of the phase spent with a saturated
// link.
func (p *Phase) SatFraction() float64 {
	if c := p.Cycles(); c > 0 {
		return p.SatCycles / c
	}
	return 0
}

// Separate classifies every launch and merges adjacent launches of the
// same regime into phases, in timeline order. An empty run yields nil.
func Separate(r *Run, opts PhaseOptions) []Phase {
	opts = opts.withDefaults()
	if len(r.Launches) == 0 {
		return nil
	}
	sat := r.satSpans()
	classify := func(l *Launch) PhaseClass {
		satFrac := 0.0
		if c := l.Cycles(); c > 0 {
			satFrac = overlapCycles(sat, l.Start, l.End) / c
		}
		if l.BusyFraction() < opts.BusyThreshold || satFrac >= opts.SatThreshold {
			return MemoryBound
		}
		return ComputeBound
	}

	var phases []Phase
	for i := range r.Launches {
		l := &r.Launches[i]
		class := classify(l)
		if n := len(phases); n > 0 && phases[n-1].Class == class {
			p := &phases[n-1]
			p.LastSeq = l.Seq
			if l.End > p.EndCycles {
				p.EndCycles = l.End
			}
			p.Launches++
			p.Busy += l.Busy
			p.Stall += l.Stall
			seen := false
			for _, k := range p.Kernels {
				if k == l.Kernel {
					seen = true
					break
				}
			}
			if !seen {
				p.Kernels = append(p.Kernels, l.Kernel)
			}
			continue
		}
		phases = append(phases, Phase{
			Class:       class,
			FirstSeq:    l.Seq,
			LastSeq:     l.Seq,
			StartCycles: l.Start,
			EndCycles:   l.End,
			Launches:    1,
			Busy:        l.Busy,
			Stall:       l.Stall,
			Kernels:     []string{l.Kernel},
		})
	}
	for i := range phases {
		p := &phases[i]
		p.SatCycles = overlapCycles(sat, p.StartCycles, p.EndCycles)
	}
	return phases
}

// PhaseCost is one phase's share of a run's energy attribution.
type PhaseCost struct {
	// Phase indexes into the slice passed to CostPhases.
	Phase int
	// Terms is the phase's apportioned share of each attribution term.
	Terms obs.TermEnergy
}

// TotalJ returns the phase's total apportioned energy.
func (c *PhaseCost) TotalJ() float64 { return c.Terms.Total() }

// CostPhases apportions a run's energy-attribution terms onto its
// phases, keyed to each term's driver:
//
//	ComputeJ, ShmToRFJ, L1ToRFJ  ∝ the phase's busy SM-cycles
//	StallJ, L2ToL1J, DRAMToL2J   ∝ the phase's stall SM-cycles
//	InterGPMJ                    ∝ the phase's saturated cycles
//	ConstantJ                    ∝ the phase's elapsed cycles
//
// When a driver never occurs in the run (e.g. no saturation episodes),
// its terms fall back to the elapsed-cycles share so no energy is
// dropped. The shares sum to the input terms exactly up to float
// rounding.
func CostPhases(phases []Phase, terms obs.TermEnergy) []PhaseCost {
	var busyTot, stallTot, satTot, cycTot float64
	for i := range phases {
		busyTot += phases[i].Busy
		stallTot += phases[i].Stall
		satTot += phases[i].SatCycles
		cycTot += phases[i].Cycles()
	}
	share := func(part, total float64, i int) float64 {
		if total > 0 {
			return part / total
		}
		if cycTot > 0 {
			return phases[i].Cycles() / cycTot
		}
		return 1 / float64(len(phases)) // degenerate run: split evenly
	}

	costs := make([]PhaseCost, len(phases))
	for i := range phases {
		p := &phases[i]
		busy := share(p.Busy, busyTot, i)
		stall := share(p.Stall, stallTot, i)
		sat := share(p.SatCycles, satTot, i)
		elapsed := share(p.Cycles(), cycTot, i)
		costs[i] = PhaseCost{
			Phase: i,
			Terms: obs.TermEnergy{
				ComputeJ:  terms.ComputeJ * busy,
				ShmToRFJ:  terms.ShmToRFJ * busy,
				L1ToRFJ:   terms.L1ToRFJ * busy,
				StallJ:    terms.StallJ * stall,
				L2ToL1J:   terms.L2ToL1J * stall,
				DRAMToL2J: terms.DRAMToL2J * stall,
				InterGPMJ: terms.InterGPMJ * sat,
				ConstantJ: terms.ConstantJ * elapsed,
			},
		}
	}
	return costs
}
