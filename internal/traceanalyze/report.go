// Deterministic report rendering. Every renderer here promises
// byte-identical output for equal inputs: rows follow slice order
// (never map iteration), floats go through fixed formats
// (strconv.FormatFloat 'g' for machine columns, fixed-precision
// percentages for human ones), and no timestamps or environment leak
// in. That promise is what lets scripts/trace_regress.sh diff a
// freshly rendered signature against a checked-in baseline.
package traceanalyze

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"gpujoule/internal/obs"
)

// Analysis bundles every analytics pass over one run.
type Analysis struct {
	// Run is the analyzed run.
	Run *Run
	// Cycle is the detected repeating kernel cycle, nil when nothing
	// repeats.
	Cycle *Cycle
	// Phases is the compute/memory phase separation.
	Phases []Phase
	// Costs carries the per-phase joule apportionment after Cost is
	// called; nil until then.
	Costs []PhaseCost
}

// Analyze runs cycle detection and phase separation over r.
func Analyze(r *Run, copts CycleOptions, popts PhaseOptions) *Analysis {
	return &Analysis{
		Run:    r,
		Cycle:  DetectCycle(r, copts),
		Phases: Separate(r, popts),
	}
}

// Cost apportions the given energy-attribution terms onto the phases
// (see CostPhases) so the rendered phase table carries joules.
func (a *Analysis) Cost(terms obs.TermEnergy) {
	a.Costs = CostPhases(a.Phases, terms)
}

// fmtG renders a float exactly and minimally — the machine-column
// format shared by signature files and CSV.
func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// fmtPct renders a delta percentage, mapping +Inf to "new".
func fmtPct(v float64) string {
	if math.IsInf(v, 1) {
		return "new"
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// writef is fmt.Fprintf with sticky error collection.
type writef struct {
	w   io.Writer
	err error
}

func (p *writef) f(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// WriteMarkdown renders the analysis as a human-readable report.
func (a *Analysis) WriteMarkdown(w io.Writer) error {
	p := &writef{w: w}
	r := a.Run
	p.f("# Trace analysis: %s\n\n", r.Name)
	var busy, stall float64
	for i := range r.Launches {
		busy += r.Launches[i].Busy
		stall += r.Launches[i].Stall
	}
	busyFrac := 1.0
	if busy+stall > 0 {
		busyFrac = busy / (busy + stall)
	}
	span := r.TotalCycles()
	satCycles := overlapCycles(r.satSpans(), r.StartCycles(), r.EndCycles())
	p.f("- launches: %d over %s cycles (%.3f ms at %s Hz)\n",
		len(r.Launches), fmtG(span), span/r.ClockHz*1e3, fmtG(r.ClockHz))
	p.f("- SM busy fraction: %.1f%% (busy %s / stall %s SM-cycles)\n",
		busyFrac*100, fmtG(busy), fmtG(stall))
	p.f("- link saturation: %d episode(s) covering %.1f%% of the span\n",
		len(r.Episodes), satShare(satCycles, span)*100)
	p.f("- launch-sequence signature: %016x\n", SeqSignature(kernelSeq(r)))

	p.f("\n## Repeating kernel cycle\n\n")
	if a.Cycle == nil {
		p.f("none detected (no kernel sequence repeats at least twice).\n")
	} else {
		c := a.Cycle
		p.f("period %d, %d iterations covering launches %d..%d, signature %016x\n",
			c.Period, c.Iterations, c.Start, c.Start+c.Coverage()-1, c.Signature)
		p.f("members (canonical order): %s\n\n", strings.Join(c.Members, " -> "))
		p.f("| iter | launches | cycles | busy %% | saturated %% |\n")
		p.f("|-----:|---------:|-------:|-------:|------------:|\n")
		for i := range c.Iters {
			it := &c.Iters[i]
			p.f("| %d | %d..%d | %s | %.1f | %.1f |\n",
				it.Index, it.FirstSeq, it.LastSeq, fmtG(it.Cycles),
				it.BusyFraction()*100, it.SatFraction()*100)
		}
		p.f("\n| member | launches | mean cycles | busy %% |\n")
		p.f("|--------|---------:|------------:|-------:|\n")
		for i := range c.MemberStats {
			m := &c.MemberStats[i]
			mb := 1.0
			if tot := m.Busy + m.Stall; tot > 0 {
				mb = m.Busy / tot
			}
			p.f("| %s | %d | %s | %.1f |\n", m.Kernel, m.Count, fmtG(m.MeanCycles()), mb*100)
		}
	}

	p.f("\n## Phases\n\n")
	if len(a.Phases) == 0 {
		p.f("empty run.\n")
		return p.err
	}
	if a.Costs != nil {
		p.f("| # | class | launches | cycles | busy %% | saturated %% | energy J | kernels |\n")
		p.f("|--:|-------|---------:|-------:|-------:|------------:|---------:|---------|\n")
	} else {
		p.f("| # | class | launches | cycles | busy %% | saturated %% | kernels |\n")
		p.f("|--:|-------|---------:|-------:|-------:|------------:|---------|\n")
	}
	for i := range a.Phases {
		ph := &a.Phases[i]
		if a.Costs != nil {
			p.f("| %d | %s | %d | %s | %.1f | %.1f | %s | %s |\n",
				i, ph.Class, ph.Launches, fmtG(ph.Cycles()),
				ph.BusyFraction()*100, ph.SatFraction()*100,
				fmtG(a.Costs[i].TotalJ()), strings.Join(ph.Kernels, ", "))
		} else {
			p.f("| %d | %s | %d | %s | %.1f | %.1f | %s |\n",
				i, ph.Class, ph.Launches, fmtG(ph.Cycles()),
				ph.BusyFraction()*100, ph.SatFraction()*100,
				strings.Join(ph.Kernels, ", "))
		}
	}
	return p.err
}

// WritePhasesCSV renders the phase table as machine-readable CSV.
func (a *Analysis) WritePhasesCSV(w io.Writer) error {
	p := &writef{w: w}
	p.f("phase,class,first_seq,last_seq,launches,cycles,busy_cycles,stall_cycles,sat_cycles,energy_j\n")
	for i := range a.Phases {
		ph := &a.Phases[i]
		energy := ""
		if a.Costs != nil {
			energy = fmtG(a.Costs[i].TotalJ())
		}
		p.f("%d,%s,%d,%d,%d,%s,%s,%s,%s,%s\n",
			i, ph.Class, ph.FirstSeq, ph.LastSeq, ph.Launches,
			fmtG(ph.Cycles()), fmtG(ph.Busy), fmtG(ph.Stall), fmtG(ph.SatCycles), energy)
	}
	return p.err
}

// WriteMarkdown renders the comparison as a human-readable report.
func (c *Comparison) WriteMarkdown(w io.Writer) error {
	p := &writef{w: w}
	p.f("# Trace comparison\n\n")
	p.f("- baseline:  %s (%d launches, %s cycles)\n", c.Base.Name, len(c.Base.Launches), fmtG(c.BaseTotal()))
	p.f("- optimized: %s (%d launches, %s cycles)\n", c.Opt.Name, len(c.Opt.Launches), fmtG(c.OptTotal()))
	p.f("- end-to-end delta: %s%%\n", fmtPct(c.TotalDeltaPct()))
	p.f("- alignment: %d launches matched", c.Matched)
	for _, ch := range c.Inserted {
		p.f(", +%d %s", ch.Count, ch.Kernel)
	}
	for _, ch := range c.Removed {
		p.f(", -%d %s", ch.Count, ch.Kernel)
	}
	p.f("\n\n## Per-kernel deltas\n\n")
	p.f("| kernel | base launches | opt launches | base cycles | opt cycles | delta %% |\n")
	p.f("|--------|--------------:|-------------:|------------:|-----------:|--------:|\n")
	for i := range c.Kernels {
		d := &c.Kernels[i]
		p.f("| %s | %d | %d | %s | %s | %s |\n",
			d.Kernel, d.BaseLaunches, d.OptLaunches,
			fmtG(d.BaseCycles), fmtG(d.OptCycles), fmtPct(d.DeltaPct()))
	}
	p.f("\n## Per-phase deltas\n\n")
	p.f("| # | base class | opt class | base cycles | opt cycles | delta %% |\n")
	p.f("|--:|-----------|-----------|------------:|-----------:|--------:|\n")
	for i := range c.Phases {
		d := &c.Phases[i]
		p.f("| %d | %s | %s | %s | %s | %s |\n",
			d.Index, orDash(string(d.BaseClass)), orDash(string(d.OptClass)),
			fmtG(d.BaseCycles), fmtG(d.OptCycles), fmtPct(d.DeltaPct()))
	}
	return p.err
}

// WriteCSV renders the per-kernel delta table as machine-readable CSV.
func (c *Comparison) WriteCSV(w io.Writer) error {
	p := &writef{w: w}
	p.f("kernel,base_launches,opt_launches,base_cycles,opt_cycles,base_busy,base_stall,opt_busy,opt_stall,delta_pct\n")
	for i := range c.Kernels {
		d := &c.Kernels[i]
		p.f("%s,%d,%d,%s,%s,%s,%s,%s,%s,%s\n",
			d.Kernel, d.BaseLaunches, d.OptLaunches,
			fmtG(d.BaseCycles), fmtG(d.OptCycles),
			fmtG(d.BaseBusy), fmtG(d.BaseStall), fmtG(d.OptBusy), fmtG(d.OptStall),
			fmtPct(d.DeltaPct()))
	}
	return p.err
}

// WriteSignature renders the compact regression-baseline form of runs:
// one "run" line per run (name, launch count, sequence signature,
// exact total cycles), a "cycle" line when one was detected, and one
// "phase" line per phase. Tab-separated; floats in exact 'g' format.
// Byte-stable across invocations and machines — the simulator itself
// is deterministic, so these lines only change when behavior does.
func WriteSignature(w io.Writer, runs []*Run, copts CycleOptions, popts PhaseOptions) error {
	p := &writef{w: w}
	p.f("# gpujoule trace signature v1\n")
	for _, r := range runs {
		p.f("run\t%s\t%d\t%016x\t%s\n",
			r.Name, len(r.Launches), SeqSignature(kernelSeq(r)), fmtG(r.TotalCycles()))
		if c := DetectCycle(r, copts); c != nil {
			p.f("cycle\t%d\t%d\t%016x\t%s\n",
				c.Period, c.Iterations, c.Signature, strings.Join(c.Members, "|"))
		}
		for i, ph := range Separate(r, popts) {
			p.f("phase\t%d\t%s\t%d\t%s\n", i, ph.Class, ph.Launches, fmtG(ph.Cycles()))
		}
	}
	return p.err
}

func kernelSeq(r *Run) []string {
	seq := make([]string, len(r.Launches))
	for i := range r.Launches {
		seq[i] = r.Launches[i].Kernel
	}
	return seq
}

func satShare(sat, span float64) float64 {
	if span > 0 {
		return sat / span
	}
	return 0
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
