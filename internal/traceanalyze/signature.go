// Launch-sequence signatures: the hashes that make kernel cycles and
// whole traces comparable as values. A signature is an FNV-1a fold
// over the kernel-name sequence with a separator byte, so "ab","c" and
// "a","bc" hash apart; cycle signatures are taken over the minimal
// rotation of the member sequence, so two traces whose repeating unit
// was detected at different offsets (one trace entered the loop one
// kernel later) still produce equal cycle signatures.
package traceanalyze

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString folds one string plus a separator into h (FNV-1a).
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= 0xff // separator: never appears in UTF-8 kernel names
	h *= fnvPrime64
	return h
}

// SeqSignature hashes a kernel-name sequence.
func SeqSignature(kernels []string) uint64 {
	h := uint64(fnvOffset64)
	for _, k := range kernels {
		h = hashString(h, k)
	}
	return h
}

// minRotationIndex returns the start index of the lexicographically
// minimal rotation of seq (Booth's algorithm over the doubled
// sequence). It is the canonical phase origin of a detected cycle:
// rotation-invariant, so equal cycles detected at different offsets
// canonicalize identically.
func minRotationIndex(seq []string) int {
	n := len(seq)
	if n <= 1 {
		return 0
	}
	at := func(i int) string { return seq[i%n] }
	// Failure-function formulation of Booth's algorithm, adapted to an
	// arbitrary comparable alphabet.
	f := make([]int, 2*n)
	for i := range f {
		f[i] = -1
	}
	k := 0
	for j := 1; j < 2*n; j++ {
		i := f[j-k-1]
		for i != -1 && at(j) != at(k+i+1) {
			if at(j) < at(k+i+1) {
				k = j - i - 1
			}
			i = f[i]
		}
		if i == -1 && at(j) != at(k+i+1) {
			if at(j) < at(k+i+1) {
				k = j
			}
			f[j-k] = -1
		} else {
			f[j-k] = i + 1
		}
	}
	return k
}

// rotate returns seq rotated so that position start comes first.
func rotate(seq []string, start int) []string {
	n := len(seq)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = seq[(start+i)%n]
	}
	return out
}

// CanonicalCycle canonicalizes a cycle's member sequence: the minimal
// rotation, its start offset within members, and the signature over
// the rotated sequence.
func CanonicalCycle(members []string) (canonical []string, rotation int, sig uint64) {
	rotation = minRotationIndex(members)
	canonical = rotate(members, rotation)
	return canonical, rotation, SeqSignature(canonical)
}
