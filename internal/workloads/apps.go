package workloads

import (
	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// The builders below encode the first-order behaviour of each Table II
// application. Conventions:
//
//   - Streaming arrays use PatOwn so first-touch placement localizes
//     them (the §V-A1 configuration rewards this, as in the paper).
//   - Indirection/gather structures use PatRandom over HomeStriped
//     regions: this is the NUMA-hostile traffic that exposes inter-GPM
//     bandwidth at high module counts.
//   - Halo exchange uses PatNeighbor; with contiguous CTA scheduling
//     only partition-boundary CTAs cross modules, as on real stencils.
//   - Broadcast tables use PatShared over small regions that the
//     module-side L2s capture.
//   - Control divergence is expressed with Active<32; the reference
//     silicon charges for it while GPUJoule cannot see it (§IV-A).

// BPROP: back-propagation NN training. Two alternating layer kernels,
// SP-FMA dominated with sigmoid (EX2) activation, weight streams plus a
// broadcast activation vector staged through shared memory.
func buildBPROP(p Params) *trace.App {
	grid := p.grid(8192)
	weights := p.stream(96 << 20)
	regions := []trace.Region{
		{Name: "weights", Bytes: weights},
		{Name: "delta", Bytes: weights},
		{Name: "activations", Bytes: 4 << 20, Home: trace.HomeStriped},
		// Gradient accumulators scattered across layers.
		{Name: "grads", Bytes: 32 << 20, Home: trace.HomeStriped},
	}
	forward := &trace.Kernel{
		Name: "bprop-forward", Grid: grid, WarpsPerCTA: 8, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatShared}},
			{Op: isa.OpLoadShared},
			{Op: isa.OpFFMA32, Times: 14},
			{Op: isa.OpExp2_32},
			{Op: isa.OpRcp32},
			{Op: isa.OpStoreShared},
			{Op: isa.OpBarrier},
		},
	}
	backward := &trace.Kernel{
		Name: "bprop-backward", Grid: grid, WarpsPerCTA: 8, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadShared},
			{Op: isa.OpFFMA32, Times: 12},
			{Op: isa.OpFMul32, Times: 2},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 3, Pattern: trace.PatRandom}},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
			{Op: isa.OpBarrier},
		},
	}
	var launches []trace.Launch
	for i := 0; i < 3; i++ {
		launches = append(launches, trace.Launch{Kernel: forward}, trace.Launch{Kernel: backward})
	}
	return &trace.App{Name: "BPROP", Category: trace.CategoryCompute, Regions: regions, Launches: launches}
}

// BTREE: B+Tree search. Every warp walks the (shared, fixed-size) tree
// with dependent, mildly divergent probes; integer-compare dominated.
// The 6 MB tree exceeds one module's L2 but fits the aggregated
// module-side L2s, producing the super-linear small-GPM scaling that
// pushes compute-class EDPSE above 100% (§V-B).
func buildBTREE(p Params) *trace.App {
	grid := p.grid(8192)
	regions := []trace.Region{
		{Name: "tree", Bytes: 6 << 20, Home: trace.HomeStriped},
		{Name: "queries", Bytes: p.stream(32 << 20)},
		{Name: "results", Bytes: p.stream(32 << 20)},
	}
	search := &trace.Kernel{
		Name: "btree-search", Grid: grid, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom, Lines: 2, Chase: true}},
			{Op: isa.OpIAdd32, Times: 6},
			{Op: isa.OpAnd32, Times: 2},
			{Op: isa.OpISub32, Times: 2, Active: 28},
			{Op: isa.OpBranch},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "BTREE", Category: trace.CategoryCompute, Regions: regions,
		Launches: []trace.Launch{{Kernel: search}}}
}

// CoMD: classical molecular dynamics force kernel. DP-FMA and
// square-root dominated with a small, heavily-reused particle set —
// the memory subsystem is almost idle, which is exactly why GPUJoule
// underestimates its energy in Fig. 4b (utilization-dependent DRAM
// background power that a top-down model cannot see).
func buildCoMD(p Params) *trace.App {
	grid := p.grid(8192)
	regions := []trace.Region{
		// The 49-body particle set is tiny; it lives in the caches.
		{Name: "positions", Bytes: 1536 << 10, Home: trace.HomeStriped},
		{Name: "forces", Bytes: p.stream(16 << 20)},
	}
	force := &trace.Kernel{
		Name: "comd-force", Grid: grid, WarpsPerCTA: 8, Iters: 6,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatShared}},
			{Op: isa.OpFFMA64, Times: 30},
			{Op: isa.OpFMul64, Times: 4},
			{Op: isa.OpSqrt32, Times: 2},
			{Op: isa.OpRcp32},
			{Op: isa.OpFAdd64, Times: 4},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "CoMD", Category: trace.CategoryCompute, Regions: regions,
		Launches: []trace.Launch{{Kernel: force}, {Kernel: force}}}
}

// Hotspot: 2D thermal stencil, iterative. SP compute over a grid with
// halo exchange; the ~12 MB working set rewards aggregated L2.
func buildHotspot(p Params) *trace.App {
	grid := p.grid(8192)
	temp := p.stream(12 << 20)
	regions := []trace.Region{
		{Name: "temp", Bytes: temp},
		{Name: "power", Bytes: temp},
		{Name: "out", Bytes: temp},
	}
	step := &trace.Kernel{
		Name: "hotspot-step", Grid: grid, WarpsPerCTA: 8, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatNeighbor, NeighborPct: 20}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadShared},
			{Op: isa.OpFFMA32, Times: 10},
			{Op: isa.OpFAdd32, Times: 4},
			{Op: isa.OpFMul32, Times: 2},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatOwn}},
			{Op: isa.OpBarrier},
		},
	}
	return &trace.App{Name: "Hotspot", Category: trace.CategoryCompute, Regions: regions,
		Launches: []trace.Launch{{Kernel: step, Count: p.launches(6)}}}
}

// LuleshUns: unstructured-mesh shock hydrodynamics. DP compute with
// divergent indirect gathers; excluded from the §V subset for lack of
// 32×-fill parallelism (kept at a smaller grid here).
func buildLuleshUns(p Params) *trace.App {
	grid := p.grid(1024)
	regions := []trace.Region{
		{Name: "nodes", Bytes: p.stream(48 << 20), Home: trace.HomeStriped},
		{Name: "elems", Bytes: p.stream(64 << 20)},
	}
	calc := &trace.Kernel{
		Name: "luleshuns-calc", Grid: grid, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom, Lines: 4}, Active: 24},
			{Op: isa.OpFFMA64, Times: 14, Active: 24},
			{Op: isa.OpFMul64, Times: 3},
			{Op: isa.OpSqrt32},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "LuleshUns", Category: trace.CategoryCompute, Regions: regions,
		Launches: []trace.Launch{{Kernel: calc, Count: 3}}}
}

// PathF: PathFinder dynamic programming. Row-wave structure: many
// small, short launches over a modest row buffer with halo reads.
func buildPathF(p Params) *trace.App {
	grid := p.grid(4096)
	regions := []trace.Region{
		{Name: "rows", Bytes: p.stream(24 << 20)},
		{Name: "result", Bytes: p.stream(24 << 20)},
	}
	row := &trace.Kernel{
		Name: "pathf-row", Grid: grid, WarpsPerCTA: 4, Iters: 6,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatNeighbor, NeighborPct: 30}},
			{Op: isa.OpIAdd32, Times: 5},
			{Op: isa.OpISub32, Times: 2},
			{Op: isa.OpBranch},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "PathF", Category: trace.CategoryCompute, Regions: regions,
		Launches: []trace.Launch{{Kernel: row, Count: p.launches(12)}}}
}

// RSBench: Monte Carlo neutron cross-section lookup. Transcendental
// and polynomial evaluation dominates; memory traffic is negligible,
// making it the second low-memory-utilization outlier of Fig. 4b.
func buildRSBench(p Params) *trace.App {
	grid := p.grid(8192)
	regions := []trace.Region{
		{Name: "xsdata", Bytes: 2 << 20, Home: trace.HomeStriped},
		{Name: "out", Bytes: p.stream(8 << 20)},
	}
	lookup := &trace.Kernel{
		Name: "rsbench-lookup", Grid: grid, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatShared}},
			{Op: isa.OpSin32, Times: 2},
			{Op: isa.OpCos32, Times: 2},
			{Op: isa.OpExp2_32, Times: 2},
			{Op: isa.OpLog2_32},
			{Op: isa.OpFFMA32, Times: 26},
			{Op: isa.OpFFMA64, Times: 6},
			{Op: isa.OpFMul32, Times: 6},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "RSBench", Category: trace.CategoryCompute, Regions: regions,
		Launches: []trace.Launch{{Kernel: lookup}}}
}

// Srad-v1: speckle-reducing anisotropic diffusion, v1. Stencil with
// data-dependent (divergent) branches; excluded from the §V subset.
func buildSradV1(p Params) *trace.App {
	grid := p.grid(1024)
	img := p.stream(8 << 20)
	regions := []trace.Region{
		{Name: "img", Bytes: img},
		{Name: "coef", Bytes: img},
	}
	diffuse := &trace.Kernel{
		Name: "sradv1-diffuse", Grid: grid, WarpsPerCTA: 8, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatNeighbor, NeighborPct: 15}},
			{Op: isa.OpFFMA32, Times: 12, Active: 20},
			{Op: isa.OpSqrt32, Active: 20},
			{Op: isa.OpRcp32},
			{Op: isa.OpBranch},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "Srad-v1", Category: trace.CategoryCompute, Regions: regions,
		Launches: []trace.Launch{{Kernel: diffuse, Count: p.launches(6)}}}
}

// MiniAMR: adaptive mesh refinement. Stencil sweeps over refined
// blocks with boundary-exchange indirection, structured as dozens of
// sub-millisecond launches — the launch structure that defeats the
// 15 ms power sensor in Fig. 4b.
func buildMiniAMR(p Params) *trace.App {
	grid := p.grid(8192)
	regions := []trace.Region{
		{Name: "blocks", Bytes: p.stream(96 << 20)},
		{Name: "bounds", Bytes: p.stream(32 << 20), Home: trace.HomeStriped},
	}
	sweep := &trace.Kernel{
		Name: "miniamr-sweep", Grid: grid, WarpsPerCTA: 4, Iters: 2,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatNeighbor, NeighborPct: 25}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatRandom, Lines: 2}},
			{Op: isa.OpFFMA64, Times: 4},
			{Op: isa.OpFAdd64, Times: 2},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "MiniAMR", Category: trace.CategoryMemory, Regions: regions,
		// Host-side regridding separates the short sweep kernels.
		HostGapCycles: 100e3 * p.scale(),
		Launches:      []trace.Launch{{Kernel: sweep, Count: p.launches(32)}}}
}

// BFS: breadth-first search over a 1M-node graph. Highly divergent
// random gathers in many tiny level launches; the other sensor-limited
// Fig. 4b outlier. Excluded from the §V subset.
func buildBFS(p Params) *trace.App {
	grid := p.grid(1024)
	regions := []trace.Region{
		{Name: "graph", Bytes: p.stream(128 << 20), Home: trace.HomeStriped},
		{Name: "frontier", Bytes: p.stream(8 << 20)},
	}
	level := &trace.Kernel{
		Name: "bfs-level", Grid: grid, WarpsPerCTA: 4, Iters: 1,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom, Lines: 8}, Active: 12},
			{Op: isa.OpIAdd32, Times: 3, Active: 12},
			{Op: isa.OpBranch},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}, Active: 12},
		},
	}
	return &trace.App{Name: "BFS", Category: trace.CategoryMemory, Regions: regions,
		// Host-side frontier management between levels dwarfs the tiny
		// level kernels.
		HostGapCycles: 300e3 * p.scale(),
		Launches:      []trace.Launch{{Kernel: level, Count: p.launches(40)}}}
}

// Kmeans: k-means clustering. Streams the point set while re-reading a
// tiny broadcast centroid table that the L2s capture; distance
// computation in SP.
func buildKmeans(p Params) *trace.App {
	grid := p.grid(8192)
	regions := []trace.Region{
		{Name: "points", Bytes: p.stream(96 << 20)},
		{Name: "centroids", Bytes: 64 << 10, Home: trace.HomeStriped},
		{Name: "assign", Bytes: p.stream(16 << 20)},
		// Per-cluster accumulators, atomically updated from every
		// module: genuine all-to-all traffic.
		{Name: "sums", Bytes: 24 << 20, Home: trace.HomeStriped},
	}
	assign := &trace.Kernel{
		Name: "kmeans-assign", Grid: grid, WarpsPerCTA: 8, Iters: 4,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatShared}},
			{Op: isa.OpFFMA32, Times: 8},
			{Op: isa.OpFAdd32, Times: 2},
			{Op: isa.OpBranch},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 3, Pattern: trace.PatRandom}},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "Kmeans", Category: trace.CategoryMemory, Regions: regions,
		Launches: []trace.Launch{{Kernel: assign, Count: p.launches(5)}}}
}

// lulesh builds the structured Lulesh variants: DP hydrodynamics over
// large element streams with indirect nodal gathers — the archetypal
// NUMA-hostile CORAL workload.
func lulesh(name string, p Params, meshBytes uint64, grid int) *trace.App {
	regions := []trace.Region{
		{Name: "elems", Bytes: p.stream(meshBytes)},
		{Name: "nodes", Bytes: p.stream(meshBytes / 2), Home: trace.HomeStriped},
		{Name: "out", Bytes: p.stream(meshBytes)},
	}
	calc := &trace.Kernel{
		Name: name + "-calc", Grid: p.grid(grid), WarpsPerCTA: 8, Iters: 5,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatRandom, Lines: 3}},
			{Op: isa.OpFFMA64, Times: 10},
			{Op: isa.OpFMul64, Times: 2},
			{Op: isa.OpFAdd64, Times: 2},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: name, Category: trace.CategoryMemory, Regions: regions,
		Launches: []trace.Launch{{Kernel: calc, Count: p.launches(3)}}}
}

func buildLulesh150(p Params) *trace.App { return lulesh("Lulesh-150", p, 128<<20, 8192) }
func buildLulesh190(p Params) *trace.App { return lulesh("Lulesh-190", p, 224<<20, 12288) }

// nekbone builds the Nekbone spectral-element solver variants: DP
// matrix-vector products staged through shared memory over a large
// element stream, with a modest indirect component from the
// gather-scatter operator.
func nekbone(name string, p Params, meshBytes uint64) *trace.App {
	regions := []trace.Region{
		{Name: "elems", Bytes: p.stream(meshBytes)},
		{Name: "gs", Bytes: p.stream(meshBytes / 4), Home: trace.HomeStriped},
		{Name: "out", Bytes: p.stream(meshBytes)},
	}
	ax := &trace.Kernel{
		Name: name + "-ax", Grid: p.grid(8192), WarpsPerCTA: 8, Iters: 5,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadShared},
			{Op: isa.OpFFMA64, Times: 12},
			{Op: isa.OpStoreShared},
			{Op: isa.OpBarrier},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatRandom}},
			{Op: isa.OpFAdd64, Times: 2},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: name, Category: trace.CategoryMemory, Regions: regions,
		Launches: []trace.Launch{{Kernel: ax, Count: p.launches(4)}}}
}

func buildNekbone12(p Params) *trace.App { return nekbone("Nekbone-12", p, 96<<20) }
func buildNekbone18(p Params) *trace.App { return nekbone("Nekbone-18", p, 176<<20) }

// MnCtct: Mini Contact search. Divergent random probes against a
// striped contact structure; excluded from the §V subset.
func buildMnCtct(p Params) *trace.App {
	grid := p.grid(1024)
	regions := []trace.Region{
		{Name: "contacts", Bytes: p.stream(96 << 20), Home: trace.HomeStriped},
		{Name: "out", Bytes: p.stream(16 << 20)},
	}
	search := &trace.Kernel{
		Name: "mnctct-search", Grid: grid, WarpsPerCTA: 8, Iters: 6,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom, Lines: 6}, Active: 16},
			{Op: isa.OpFFMA32, Times: 6, Active: 16},
			{Op: isa.OpBranch},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}, Active: 16},
		},
	}
	return &trace.App{Name: "MnCtct", Category: trace.CategoryMemory, Regions: regions,
		Launches: []trace.Launch{{Kernel: search, Count: 3}}}
}

// Srad-v2: the memory-bound SRAD variant. Large-image stencil with
// halo reads; bandwidth-dominated SP compute.
func buildSradV2(p Params) *trace.App {
	grid := p.grid(8192)
	img := p.stream(128 << 20)
	regions := []trace.Region{
		{Name: "img", Bytes: img},
		{Name: "out", Bytes: img},
		// Global diffusion statistics, reduced across the whole image
		// every iteration.
		{Name: "stats", Bytes: 32 << 20, Home: trace.HomeStriped},
	}
	diffuse := &trace.Kernel{
		Name: "sradv2-diffuse", Grid: grid, WarpsPerCTA: 8, Iters: 3,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatNeighbor, NeighborPct: 20}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatRandom}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
			{Op: isa.OpFFMA32, Times: 6},
			{Op: isa.OpFMul32, Times: 2},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "Srad-v2", Category: trace.CategoryMemory, Regions: regions,
		Launches: []trace.Launch{{Kernel: diffuse, Count: p.launches(5)}}}
}

// Stream: McCalpin STREAM triad. Pure partitioned bandwidth streaming;
// the cleanest DRAM-bound point of the suite.
func buildStream(p Params) *trace.App {
	grid := p.grid(12288)
	n := p.stream(256 << 20)
	regions := []trace.Region{
		{Name: "a", Bytes: n},
		{Name: "b", Bytes: n},
		{Name: "c", Bytes: n},
	}
	triad := &trace.Kernel{
		Name: "stream-triad", Grid: grid, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn}},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 2, Pattern: trace.PatOwn}},
			{Op: isa.OpFFMA32},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{Name: "Stream", Category: trace.CategoryMemory, Regions: regions,
		Launches: []trace.Launch{{Kernel: triad, Count: 2}}}
}
