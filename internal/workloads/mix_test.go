package workloads

import (
	"context"

	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
)

// mixProfile characterizes one workload's executed instruction mix and
// memory behaviour on the reference 1-GPM machine.
type mixProfile struct {
	dpFrac     float64 // FP64 share of compute instructions
	sfuFrac    float64 // special-function share of compute instructions
	intFrac    float64 // integer share of compute instructions
	bytesPerKI float64 // DRAM bytes per 1000 compute instructions
	shmPerKI   float64 // shared-memory transactions per 1000 compute instructions
	divergence float64 // 1 - activeThreads/(32*warpInsts)
	launches   int
}

func profile(t *testing.T, name string) mixProfile {
	t.Helper()
	app, err := ByName(name, Params{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(context.Background(), sim.BaseGPM(), app)
	if err != nil {
		t.Fatal(err)
	}
	c := &r.Counts
	var comp, dp, sfu, integer, warp, active uint64
	for _, op := range isa.ComputeOps() {
		comp += c.Inst[op]
		warp += c.WarpInst[op]
		active += c.Inst[op]
		switch op {
		case isa.OpFAdd64, isa.OpFMul64, isa.OpFFMA64:
			dp += c.Inst[op]
		case isa.OpSin32, isa.OpCos32, isa.OpSqrt32, isa.OpLog2_32, isa.OpExp2_32, isa.OpRcp32:
			sfu += c.Inst[op]
		case isa.OpIAdd32, isa.OpISub32, isa.OpIMul32, isa.OpIMad32,
			isa.OpAnd32, isa.OpOr32, isa.OpXor32:
			integer += c.Inst[op]
		}
	}
	if comp == 0 {
		t.Fatalf("%s executed no compute instructions", name)
	}
	ki := float64(comp) / 1000
	return mixProfile{
		dpFrac:     float64(dp) / float64(comp),
		sfuFrac:    float64(sfu) / float64(comp),
		intFrac:    float64(integer) / float64(comp),
		bytesPerKI: float64(c.TotalTransactionBytes(isa.TxnDRAMToL2)) / ki,
		shmPerKI:   float64(c.Txn[isa.TxnShmToRF]) / ki,
		divergence: 1 - float64(active)/float64(32*warp),
		launches:   len(r.Launches),
	}
}

// TestWorkloadCharacterizations pins the first-order behaviour each
// Table II generator encodes, so workload edits cannot silently drift
// away from the application they model.
func TestWorkloadCharacterizations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 18 simulations")
	}

	// DP-dominated solvers.
	for _, name := range []string{"CoMD", "Lulesh-150", "Lulesh-190", "Nekbone-12", "Nekbone-18"} {
		if p := profile(t, name); p.dpFrac < 0.5 {
			t.Errorf("%s: DP fraction %.2f, want a DP-dominated solver", name, p.dpFrac)
		}
	}

	// RSBench leans on the SFU pipes.
	if p := profile(t, "RSBench"); p.sfuFrac < 0.1 {
		t.Errorf("RSBench: SFU fraction %.2f, want transcendental-heavy", p.sfuFrac)
	}

	// Integer-dominated searches.
	for _, name := range []string{"BTREE", "PathF", "BFS"} {
		if p := profile(t, name); p.intFrac < 0.5 {
			t.Errorf("%s: integer fraction %.2f, want compare/address-dominated", name, p.intFrac)
		}
	}

	// Shared-memory users.
	for _, name := range []string{"BPROP", "Nekbone-12", "Hotspot"} {
		if p := profile(t, name); p.shmPerKI <= 0 {
			t.Errorf("%s: no shared-memory traffic", name)
		}
	}

	// Divergent kernels vs. fully converged ones.
	for _, name := range []string{"BFS", "MnCtct", "Srad-v1", "LuleshUns"} {
		if p := profile(t, name); p.divergence < 0.1 {
			t.Errorf("%s: divergence %.2f, want a divergent kernel", name, p.divergence)
		}
	}
	for _, name := range []string{"Stream", "CoMD"} {
		if p := profile(t, name); p.divergence > 0.01 {
			t.Errorf("%s: divergence %.2f, want fully converged warps", name, p.divergence)
		}
	}

	// Memory intensity split (DRAM bytes per kilo-instruction).
	stream := profile(t, "Stream")
	rsb := profile(t, "RSBench")
	if stream.bytesPerKI < 10*rsb.bytesPerKI {
		t.Errorf("Stream (%.1f B/kI) should dwarf RSBench (%.1f B/kI) in DRAM intensity",
			stream.bytesPerKI, rsb.bytesPerKI)
	}

	// Many-short-launch apps really are many-launch.
	for _, name := range []string{"BFS", "MiniAMR"} {
		if p := profile(t, name); p.launches < 8 {
			t.Errorf("%s: %d launches, want many short launches", name, p.launches)
		}
	}
	if p := profile(t, "Stream"); p.launches > 4 {
		t.Errorf("Stream: %d launches, want few long launches", p.launches)
	}
}
