package workloads

import (
	"context"

	"os"
	"testing"

	"gpujoule/internal/core"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
)

// TestProbeScaling is an exploratory calibration aid: it prints the
// per-workload scaling behaviour at a reduced scale. Run with
// go test ./internal/workloads -run Probe -v
func TestProbeScaling(t *testing.T) {
	if os.Getenv("GPUJOULE_PROBE") == "" {
		t.Skip("exploratory probe; set GPUJOULE_PROBE=1 to run")
	}
	p := Params{Scale: 1.0}
	model := core.ProjectionModel(core.OnPackageLinks())
	for _, app := range Eval14(p) {
		base, err := sim.Simulate(context.Background(), sim.MultiGPM(1, sim.BW2x), app)
		if err != nil {
			t.Fatal(err)
		}
		bm := model.Estimate(&base.Counts)
		bs := metrics.Sample{EnergyJoules: bm.Total(), DelaySeconds: base.Seconds()}
		t.Logf("%-11s [%v] 1-GPM: %.3fms P=%.0fW L1=%.2f L2=%.2f stallfrac=%.2f",
			app.Name, app.Category, base.Seconds()*1e3, bm.AveragePower(),
			base.L1HitRate(), base.L2HitRate(),
			float64(base.Counts.StallCycles)/float64(base.Counts.Cycles*uint64(base.Counts.SMCount)))
		for _, n := range []int{2, 4, 8, 16, 32} {
			r, err := sim.Simulate(context.Background(), sim.MultiGPM(n, sim.BW2x), app)
			if err != nil {
				t.Fatal(err)
			}
			m := model.Estimate(&r.Counts)
			s := metrics.Sample{EnergyJoules: m.Total(), DelaySeconds: r.Seconds()}
			pt := metrics.Derive(bs, n, s)
			t.Logf("  %2d-GPM: speedup=%5.2fx energy=%4.2fx EDPSE=%5.1f%% remote=%.2f L2=%.2f",
				n, pt.Speedup, pt.EnergyRatio, pt.EDPSE, r.RemoteFillFraction(), r.L2HitRate())
		}
	}
}
