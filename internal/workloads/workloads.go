// Package workloads provides synthetic trace generators for the 18
// Rodinia/CORAL applications of Table II. Each generator encodes the
// published first-order characteristics of its application — compute
// vs. memory intensity, instruction mix (SP/DP/SFU/integer), working
// set size, locality structure (streaming, stencil halo, broadcast,
// indirection), control divergence, and kernel-launch structure — so
// that the multi-GPM evaluation reproduces the paper's behavioural
// spread without the original CUDA binaries.
//
// The paper's evaluation (§V) uses the 14-workload subset with enough
// parallelism to fill a 32×-capability GPU (all except BFS, LuleshUns,
// MnCtct, and Srad-v1); the GPUJoule validation (§IV-B) uses all 18.
package workloads

import (
	"fmt"
	"sort"

	"gpujoule/internal/trace"
)

// Params tunes workload sizing.
type Params struct {
	// Scale multiplies grid sizes and streaming working sets. 1.0 is
	// the paper-scale configuration (fills a 32-GPM GPU); tests use
	// small fractions. Zero means 1.0.
	Scale float64
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1.0
	}
	return p.Scale
}

// grid scales a CTA count, keeping at least 64 CTAs so even tiny test
// scales exercise multi-GPM distribution.
func (p Params) grid(base int) int {
	g := int(float64(base) * p.scale())
	if g < 64 {
		g = 64
	}
	return g
}

// stream scales a streaming region size, keeping at least 2 MB.
func (p Params) stream(baseBytes uint64) uint64 {
	b := uint64(float64(baseBytes) * p.scale())
	if b < 2<<20 {
		b = 2 << 20
	}
	return b
}

// launches scales a launch count down at small scales (iterative apps
// need not run hundreds of launches in unit tests), keeping at least 2.
func (p Params) launches(base int) int {
	n := base
	if p.scale() < 0.5 {
		n = base / 2
	}
	if p.scale() < 0.1 {
		n = base / 4
	}
	if n < 2 {
		n = 2
	}
	return n
}

// Generator builds one Table II application at the given scale.
type Generator struct {
	// Name is the Table II abbreviation.
	Name string
	// Input is the Table II input description.
	Input string
	// Category is the Table II C/M classification.
	Category trace.Category
	// InEval14 marks membership in the §V evaluation subset.
	InEval14 bool
	// Build constructs the app.
	Build func(p Params) *trace.App
}

var registry = []Generator{
	{"BPROP", "65536", trace.CategoryCompute, true, buildBPROP},
	{"BTREE", "1 Million", trace.CategoryCompute, true, buildBTREE},
	{"CoMD", "49 bodies", trace.CategoryCompute, true, buildCoMD},
	{"Hotspot", "1024x1024", trace.CategoryCompute, true, buildHotspot},
	{"LuleshUns", "Unstrc Mesh", trace.CategoryCompute, false, buildLuleshUns},
	{"PathF", "1 Million", trace.CategoryCompute, true, buildPathF},
	{"RSBench", "1 Million", trace.CategoryCompute, true, buildRSBench},
	{"Srad-v1", "100, 0.5, 502, 458", trace.CategoryCompute, false, buildSradV1},
	{"MiniAMR", "15,000", trace.CategoryMemory, true, buildMiniAMR},
	{"BFS", "Graph1MW", trace.CategoryMemory, false, buildBFS},
	{"Kmeans", "819200", trace.CategoryMemory, true, buildKmeans},
	{"Lulesh-150", "size 150", trace.CategoryMemory, true, buildLulesh150},
	{"Lulesh-190", "size 190", trace.CategoryMemory, true, buildLulesh190},
	{"Nekbone-12", "size 12", trace.CategoryMemory, true, buildNekbone12},
	{"Nekbone-18", "size 18", trace.CategoryMemory, true, buildNekbone18},
	{"MnCtct", "Mas1_2", trace.CategoryMemory, false, buildMnCtct},
	{"Srad-v2", "2048x2048", trace.CategoryMemory, true, buildSradV2},
	{"Stream", "2^26 elements", trace.CategoryMemory, true, buildStream},
}

// Names returns the Table II abbreviations of all 18 workloads, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, g := range registry {
		out[i] = g.Name
	}
	sort.Strings(out)
	return out
}

// Generators returns all 18 Table II generators in table order.
func Generators() []Generator {
	out := make([]Generator, len(registry))
	copy(out, registry)
	return out
}

// All builds all 18 applications (the §IV-B validation suite).
func All(p Params) []*trace.App {
	out := make([]*trace.App, 0, len(registry))
	for _, g := range registry {
		out = append(out, g.Build(p))
	}
	return out
}

// Eval14 builds the 14-workload evaluation subset of §V-A.
func Eval14(p Params) []*trace.App {
	out := make([]*trace.App, 0, 14)
	for _, g := range registry {
		if g.InEval14 {
			out = append(out, g.Build(p))
		}
	}
	return out
}

// ByName builds one application by its Table II abbreviation.
func ByName(name string, p Params) (*trace.App, error) {
	for _, g := range registry {
		if g.Name == name {
			return g.Build(p), nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
}
