package workloads

import (
	"context"

	"testing"
	"testing/quick"

	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

func TestAll18Validate(t *testing.T) {
	apps := All(Params{Scale: 0.1})
	if len(apps) != 18 {
		t.Fatalf("Table II has 18 applications, got %d", len(apps))
	}
	seen := make(map[string]bool)
	for _, app := range apps {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if seen[app.Name] {
			t.Errorf("duplicate workload %s", app.Name)
		}
		seen[app.Name] = true
	}
}

func TestEval14Subset(t *testing.T) {
	apps := Eval14(Params{Scale: 0.1})
	if len(apps) != 14 {
		t.Fatalf("evaluation subset has 14 workloads, got %d", len(apps))
	}
	// §V-A: all except BFS, LuleshUns, MnCtct, and Srad-v1.
	excluded := map[string]bool{"BFS": true, "LuleshUns": true, "MnCtct": true, "Srad-v1": true}
	for _, app := range apps {
		if excluded[app.Name] {
			t.Errorf("%s must be excluded from the evaluation subset", app.Name)
		}
	}
}

func TestCategoriesMatchTableII(t *testing.T) {
	want := map[string]trace.Category{
		"BPROP": trace.CategoryCompute, "BTREE": trace.CategoryCompute,
		"CoMD": trace.CategoryCompute, "Hotspot": trace.CategoryCompute,
		"LuleshUns": trace.CategoryCompute, "PathF": trace.CategoryCompute,
		"RSBench": trace.CategoryCompute, "Srad-v1": trace.CategoryCompute,
		"MiniAMR": trace.CategoryMemory, "BFS": trace.CategoryMemory,
		"Kmeans": trace.CategoryMemory, "Lulesh-150": trace.CategoryMemory,
		"Lulesh-190": trace.CategoryMemory, "Nekbone-12": trace.CategoryMemory,
		"Nekbone-18": trace.CategoryMemory, "MnCtct": trace.CategoryMemory,
		"Srad-v2": trace.CategoryMemory, "Stream": trace.CategoryMemory,
	}
	for _, app := range All(Params{Scale: 0.1}) {
		if app.Category != want[app.Name] {
			t.Errorf("%s category %v, want %v", app.Name, app.Category, want[app.Name])
		}
	}
}

func TestByName(t *testing.T) {
	app, err := ByName("Stream", Params{Scale: 0.1})
	if err != nil || app.Name != "Stream" {
		t.Fatalf("ByName(Stream) = %v, %v", app, err)
	}
	if _, err := ByName("NoSuchThing", Params{}); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	p := Params{Scale: 0.2}
	a := All(p)
	b := All(p)
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Launches) != len(b[i].Launches) {
			t.Fatalf("%s: generators must be deterministic", a[i].Name)
		}
		for j := range a[i].Launches {
			ka, kb := a[i].Launches[j].Kernel, b[i].Launches[j].Kernel
			if ka.Grid != kb.Grid || ka.WarpsPerCTA != kb.WarpsPerCTA || len(ka.Body) != len(kb.Body) {
				t.Fatalf("%s launch %d differs between builds", a[i].Name, j)
			}
		}
	}
}

func TestScaleShrinksWork(t *testing.T) {
	small, err := ByName("Lulesh-150", Params{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := ByName("Lulesh-150", Params{Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if small.Launches[0].Kernel.Grid >= big.Launches[0].Kernel.Grid {
		t.Error("scale must shrink the grid")
	}
	if small.Regions[0].Bytes >= big.Regions[0].Bytes {
		t.Error("scale must shrink streaming regions")
	}
}

func TestParamsHelpersProperty(t *testing.T) {
	f := func(raw uint8) bool {
		p := Params{Scale: float64(raw) / 64}
		return p.grid(8192) >= 64 && p.stream(96<<20) >= 2<<20 && p.launches(32) >= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperScaleFillsA32GPMGPU(t *testing.T) {
	// §V-A: the evaluation workloads must have enough parallelism to
	// fill a GPU with 32x the capability of the basic module.
	cfg := sim.MultiGPM(32, sim.BW2x)
	slots := cfg.TotalSMs() // one CTA per SM minimum
	for _, app := range Eval14(Params{Scale: 1.0}) {
		for _, l := range app.Launches {
			if l.Kernel.Grid < slots {
				t.Errorf("%s kernel %s has %d CTAs, cannot fill %d SMs",
					app.Name, l.Kernel.Name, l.Kernel.Grid, slots)
			}
		}
	}
}

func TestCategoryBehaviourDiverges(t *testing.T) {
	// The defining behavioural split of Table II: at the 1-GPM design,
	// memory-intensive workloads move far more DRAM traffic per
	// instruction than compute-intensive ones (aggregate check).
	p := Params{Scale: 0.1}
	intensity := func(name string) float64 {
		app, err := ByName(name, p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Simulate(context.Background(), sim.BaseGPM(), app)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.Counts.TotalTransactionBytes(isa.TxnDRAMToL2)) /
			float64(r.Counts.TotalInstructions())
	}
	memAvg := (intensity("Stream") + intensity("Lulesh-150")) / 2
	compAvg := (intensity("RSBench") + intensity("CoMD")) / 2
	if memAvg < 4*compAvg {
		t.Errorf("memory class should be >4x more DRAM-intensive: M=%.3f C=%.3f B/inst",
			memAvg, compAvg)
	}
}

func TestShortLaunchAppsHaveGaps(t *testing.T) {
	// The Fig. 4b sensor outliers rely on host-side gaps between their
	// many short launches.
	for _, name := range []string{"BFS", "MiniAMR"} {
		app, err := ByName(name, Params{Scale: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if app.HostGapCycles <= 0 {
			t.Errorf("%s must declare host-side gaps", name)
		}
		if app.TotalLaunches() < 10 {
			t.Errorf("%s is a many-short-launch app, got %d launches", name, app.TotalLaunches())
		}
	}
}
