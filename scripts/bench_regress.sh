#!/usr/bin/env bash
# bench_regress.sh — warn-only microbenchmark regression check.
#
# Runs the hot-path microbenchmarks (BenchmarkSMAdvance,
# BenchmarkGPMParallelEpoch, BenchmarkCacheAccess*, BenchmarkBWAcquire,
# BenchmarkPageTableHome) with -count 3 and compares the per-benchmark
# minimum ns/op against the checked-in baseline
# scripts/bench_baseline.txt, benchstat-style (min-of-counts is robust
# to scheduler noise spikes; a true regression shifts the minimum).
#
# Usage:
#   scripts/bench_regress.sh            # run benchmarks, then compare
#   scripts/bench_regress.sh FILE       # compare an existing go-bench output file
#
# Exit status is 0 even when regressions are found (warn-only by
# design — shared CI runners are too noisy to block on; the CI step
# additionally appends `|| true`). Regressions print as "WARN" lines
# with the ratio so a human can eyeball the trend across PRs.
#
# Update the baseline after an intentional perf change:
#   scripts/bench_regress.sh -update
set -u

cd "$(dirname "$0")/.."

BASELINE=scripts/bench_baseline.txt
# Ratio above which a benchmark is flagged. Generous because baseline
# and CI run on different hardware; the check catches order-of-magnitude
# slips (an accidental O(W) rescan, a lost free list), not 10% drift.
THRESHOLD=${BENCH_REGRESS_THRESHOLD:-1.5}

run_benches() {
  # Fast memsys ops need many iterations to stabilize; the sim epoch
  # benchmarks are ~ms/op so 100 iterations suffice.
  go test -run '^$' -count 3 -benchtime 100x \
    -bench 'BenchmarkSMAdvance|BenchmarkGPMParallelEpoch|BenchmarkDVFSScaledSim' ./internal/sim/
  go test -run '^$' -count 3 -benchtime 100000x \
    -bench 'BenchmarkPageTableHome|BenchmarkBWAcquire|BenchmarkCacheAccess' ./internal/memsys/
}

# Reduce go-bench output to "name min_ns_op" (GOMAXPROCS suffix
# stripped so baselines transfer across -cpu values).
summarize() {
  awk '
    $1 ~ /^Benchmark/ && / ns\/op/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      for (i = 2; i <= NF; i++) if ($(i) == "ns/op") { v = $(i-1); break }
      if (!(name in min) || v + 0 < min[name] + 0) min[name] = v
    }
    END { for (n in min) printf "%s %s\n", n, min[n] }
  ' "$1" | sort
}

if [ "${1:-}" = "-update" ]; then
  tmp=$(mktemp)
  run_benches > "$tmp"
  {
    echo "# Hot-path microbenchmark baseline: min ns/op over -count 3."
    echo "# Regenerate with scripts/bench_regress.sh -update after an"
    echo "# intentional perf change. Host: $(go env GOOS)/$(go env GOARCH), $(nproc) cores."
    summarize "$tmp"
  } > "$BASELINE"
  rm -f "$tmp"
  echo "baseline rewritten: $BASELINE"
  exit 0
fi

if [ $# -ge 1 ]; then
  CURRENT_RAW=$1
else
  CURRENT_RAW=$(mktemp)
  trap 'rm -f "$CURRENT_RAW"' EXIT
  run_benches > "$CURRENT_RAW" || true
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench_regress: no baseline at $BASELINE (run scripts/bench_regress.sh -update)" >&2
  exit 0
fi

cur=$(mktemp)
summarize "$CURRENT_RAW" > "$cur"

warns=0
while read -r name base; do
  case "$name" in \#*|"") continue ;; esac
  now=$(awk -v n="$name" '$1 == n { print $2 }' "$cur")
  if [ -z "$now" ]; then
    echo "SKIP  $name: not present in current run"
    continue
  fi
  verdict=$(awk -v b="$base" -v n="$now" -v t="$THRESHOLD" \
    'BEGIN { r = n / b; printf "%.2f %s", r, (r > t ? "WARN" : "ok") }')
  ratio=${verdict% *}
  state=${verdict#* }
  printf '%-5s %s: %s ns/op vs baseline %s (%sx)\n' "$state" "$name" "$now" "$base" "$ratio"
  [ "$state" = WARN ] && warns=$((warns + 1))
done < "$BASELINE"
rm -f "$cur"

if [ "$warns" -gt 0 ]; then
  echo "bench_regress: $warns benchmark(s) above ${THRESHOLD}x baseline (warn-only, not blocking)"
fi
exit 0
