#!/usr/bin/env bash
# bench_sim.sh — rerun the PR 3 single-simulation benchmark protocol
# and rewrite BENCH_sim.json mechanically.
#
# Protocol (same as the hand-run PR 3 measurement):
#   1. Build a baseline cmd/paper from a base git rev (default HEAD —
#      run this with a dirty working tree to measure tree-vs-HEAD, or
#      pass an explicit rev to measure HEAD-vs-ancestor).
#   2. Build cmd/paper from the current working tree.
#   3. Alternate base/current runs of `paper -markdown -scale 0.05`
#      (REPS each, interleaved A/B so slow-box noise hits both sides),
#      timing with date +%s%N. Speedup is reported min/min — on a noisy
#      shared box the minimum is the least-contended observation.
#   4. Byte-compare every output against the baseline's (the invariant
#      from DESIGN.md "Performance engineering").
#   5. If the box has >1 core (or BENCH_GPM_PARALLEL forces it), time
#      the current binary again with -gpm-parallel <cores> to record
#      the intra-run parallelism win separately from the fast path.
#   6. Run the hot-path microbenchmarks and fold the ns/op table in.
#   7. Rewrite BENCH_sim.json (host info, before/after wall seconds,
#      speedups, microbench table).
#
# Usage:
#   make bench-sim                  # tree vs HEAD, 5 reps each
#   scripts/bench_sim.sh v1.2 3     # tree vs rev v1.2, 3 reps each
set -eu

cd "$(dirname "$0")/.."

BASE_REV=${1:-HEAD}
REPS=${2:-5}
SCALE=${BENCH_SCALE:-0.05}
GP=${BENCH_GPM_PARALLEL:-$(nproc)}

work=$(mktemp -d)
trap 'rm -rf "$work"; git worktree remove --force "$work/base" >/dev/null 2>&1 || true' EXIT

echo "== building baseline from $(git rev-parse --short "$BASE_REV") and current tree"
git worktree add --detach "$work/base" "$BASE_REV" >/dev/null 2>&1
(cd "$work/base" && go build -o "$work/paper_base" ./cmd/paper)
go build -o "$work/paper_cur" ./cmd/paper

run_timed() { # binary out extra_flags... -> seconds (printed)
  local bin=$1 out=$2; shift 2
  local t0 t1
  t0=$(date +%s%N)
  "$bin" -markdown -scale "$SCALE" "$@" > "$out"
  t1=$(date +%s%N)
  awk -v d=$((t1 - t0)) 'BEGIN { printf "%.2f", d / 1e9 }'
}

base_secs=() cur_secs=()
"$work/paper_base" -markdown -scale "$SCALE" > "$work/golden.md" # warm-up + golden
for i in $(seq "$REPS"); do
  b=$(run_timed "$work/paper_base" "$work/out_base.md")
  c=$(run_timed "$work/paper_cur" "$work/out_cur.md")
  cmp -s "$work/golden.md" "$work/out_base.md" || { echo "FATAL: baseline output unstable" >&2; exit 1; }
  cmp -s "$work/golden.md" "$work/out_cur.md" || { echo "FATAL: current output differs from baseline" >&2; exit 1; }
  echo "  rep $i: base ${b}s  current ${c}s (byte-identical)"
  base_secs+=("$b"); cur_secs+=("$c")
done

par_secs=()
if [ "$GP" -gt 1 ]; then
  echo "== -gpm-parallel $GP runs (intra-run parallelism)"
  for i in $(seq "$REPS"); do
    p=$(run_timed "$work/paper_cur" "$work/out_par.md" -gpm-parallel "$GP")
    cmp -s "$work/golden.md" "$work/out_par.md" || { echo "FATAL: -gpm-parallel output differs" >&2; exit 1; }
    echo "  rep $i: ${p}s (byte-identical)"
    par_secs+=("$p")
  done
fi

echo "== microbenchmarks"
go test -run '^$' -count 3 -benchtime 100x \
  -bench 'BenchmarkSMAdvance|BenchmarkGPMParallelEpoch' ./internal/sim/ > "$work/micro.txt"
go test -run '^$' -count 3 -benchtime 100000x \
  -bench 'BenchmarkPageTableHome|BenchmarkBWAcquire|BenchmarkCacheAccess' ./internal/memsys/ >> "$work/micro.txt"

BASE_DESC=$(git log -1 --format='commit %h: %s' "$BASE_REV")
export BASE_DESC GP SCALE BENCH_NOTES="${BENCH_NOTES:-}"
python3 - "$work/micro.txt" "${base_secs[*]}" "${cur_secs[*]}" "${par_secs[*]:-}" <<'PY' > BENCH_sim.json
import json, os, re, subprocess, sys, datetime

micro_path, base_s, cur_s, par_s = sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4]
base = [float(x) for x in base_s.split()]
cur = [float(x) for x in cur_s.split()]
par = [float(x) for x in par_s.split()] if par_s.strip() else []

micro = {}
for line in open(micro_path):
    m = re.match(r'(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op', line)
    if m:
        micro.setdefault(m.group(1), []).append(float(m.group(2)))
micro_min = {k: min(v) for k, v in sorted(micro.items())}

go_ver = subprocess.run(['go', 'version'], capture_output=True, text=True).stdout.split('version ')[1].strip()
cores = int(subprocess.run(['nproc'], capture_output=True, text=True).stdout)
gp = int(os.environ['GP'])

doc = {
    'benchmark': f"cmd/paper -markdown -scale {os.environ['SCALE']} (full BuildReport, all experiments)",
    'protocol': 'scripts/bench_sim.sh: interleaved A/B reps, min-of-reps speedup, byte-compare every run',
    'date': datetime.date.today().isoformat(),
    'host': {'cpu_cores': cores, 'gomaxprocs': cores, 'go': go_ver},
    'before': {'description': os.environ['BASE_DESC'], 'wall_seconds': base},
    'after': {
        'description': 'working tree (sequential, -gpm-parallel 1)',
        'wall_seconds': cur,
        'speedup': round(min(base) / min(cur), 2),
    },
    'output': 'byte-identical to the base-rev binary on every rep (cmp on the full -markdown report)',
    'microbenchmarks_ns_per_op_min': micro_min,
}
if par:
    doc['after_gpm_parallel'] = {
        'description': f'working tree, -gpm-parallel {gp}',
        'wall_seconds': par,
        'speedup_vs_before': round(min(base) / min(par), 2),
    }
if os.environ.get('BENCH_NOTES'):
    doc['notes'] = os.environ['BENCH_NOTES']
json.dump(doc, sys.stdout, indent=2)
sys.stdout.write('\n')
PY

echo "== BENCH_sim.json rewritten"
python3 -c "import json; d = json.load(open('BENCH_sim.json')); print('fast-path speedup:', d['after']['speedup']); print('parallel speedup:', d.get('after_gpm_parallel', {}).get('speedup_vs_before', 'n/a'))"
