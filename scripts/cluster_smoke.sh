#!/usr/bin/env bash
# Smoke-test the gpujouled cluster end to end:
#   1. build the daemon, cmd/sweep, and cmd/loadgen; start three
#      cluster nodes (fresh per-node caches) plus a gateway fronting
#      them;
#   2. sweep a grid through the gateway and assert the CSV is
#      byte-identical to a local (in-process) run of the same grid;
#   3. kill one node hard (-9) mid-stream-sweep and assert the sweep
#      still completes with the byte-identical CSV — the ring reroutes
#      and the gateway degrades to local compute;
#   4. drive the surviving cluster with loadgen: concurrent overlapping
#      sweeps must finish with zero dropped/duplicated points and a
#      cluster-wide cache hit rate above the floor, written to
#      BENCH_cluster.json;
#   5. scrape node and gateway /metrics into artifacts.
#
# Usage: scripts/cluster_smoke.sh [workdir]   (default: a fresh mktemp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"

GATE="127.0.0.1:18344"
N1="127.0.0.1:18345"
N2="127.0.0.1:18346"
N3="127.0.0.1:18347"
PEERS="http://$N1,http://$N2,http://$N3"
GRID="-workloads Stream,Kmeans -scale 0.05 -gpms 1,2 -bw 1x,2x"

go build -o "$WORK/gpujouled" ./cmd/gpujouled
go build -o "$WORK/sweep" ./cmd/sweep
go build -o "$WORK/loadgen" ./cmd/loadgen

start_node() { # addr cachedir logfile -> pid
    "$WORK/gpujouled" -addr "$1" -self "http://$1" -peers "$PEERS" \
        -cache "$2" -queue 4096 -executors 8 -peer-timeout 10s \
        >"$3" 2>&1 &
    echo $!
}

P1=$(start_node "$N1" "$WORK/cache1" "$WORK/node1.log")
P2=$(start_node "$N2" "$WORK/cache2" "$WORK/node2.log")
P3=$(start_node "$N3" "$WORK/cache3" "$WORK/node3.log")
"$WORK/gpujouled" -addr "$GATE" -gateway -peers "$PEERS" \
    -cache "$WORK/cache-gw" -queue 4096 -executors 8 -gateway-queue 4096 \
    >"$WORK/gateway.log" 2>&1 &
PGW=$!
trap 'kill "$P1" "$P2" "$P3" "$PGW" 2>/dev/null || true' EXIT

for addr in "$N1" "$N2" "$N3" "$GATE"; do
    for _ in $(seq 50); do
        curl -sf "http://$addr/v1/version" >/dev/null && break
        sleep 0.2
    done
    curl -sf "http://$addr/v1/version" >/dev/null || { echo "node $addr never came up" >&2; exit 1; }
done
echo "3 nodes + gateway up"

# --- Byte-identical distributed sweep ----------------------------------
# shellcheck disable=SC2086
"$WORK/sweep" $GRID -o "$WORK/local.csv"
# shellcheck disable=SC2086
"$WORK/sweep" $GRID -server "$GATE" -o "$WORK/cluster.csv"
cmp "$WORK/local.csv" "$WORK/cluster.csv"
echo "gateway sweep CSV byte-identical to local run"

# --- Kill one node mid-sweep -------------------------------------------
# A fresh grid (nothing cached anywhere) streams through the gateway
# while one node dies hard partway in: the sweep must still complete
# with bytes identical to a local run of the same grid.
KGRID="-workloads Stream,Kmeans -scale 0.07 -gpms 1,2 -bw 1x,2x"
# shellcheck disable=SC2086
"$WORK/sweep" $KGRID -o "$WORK/local_kill.csv"
# shellcheck disable=SC2086
"$WORK/sweep" $KGRID -server "$GATE" -stream -o "$WORK/cluster_kill.csv" &
STREAMER=$!
sleep 0.5
kill -9 "$P2"
echo "killed node $N2 mid-sweep"
wait "$STREAMER"
cmp "$WORK/local_kill.csv" "$WORK/cluster_kill.csv"
echo "post-kill streamed CSV byte-identical to local run"

# --- Concurrent overlapping load ---------------------------------------
# Overlapping sweeps drawn from a small pool: after the first wave
# everything is somewhere in the cluster's caches, so the hit rate must
# clear 50% even though one node is gone.
"$WORK/loadgen" -server "http://$GATE" -sweeps 1200 -concurrency 1000 \
    -workloads Stream,Kmeans -gpms 1,2 -bw 1x,2x -scale 0.05 \
    -min-hit-rate 0.5 -o "$WORK/BENCH_cluster.json"
python3 -c '
import json, sys
r = json.load(open(sys.argv[1]))
assert r["errors"] == 0, r
assert r["dropped_points"] == 0 and r["duplicate_points"] == 0, r
assert r["cluster_hit_rate"] > 0.5, r
print("loadgen: %d sweeps, %d points, %.1f%% cluster hit rate, p99 %.3fs" % (
    r["sweeps"], r["points"], 100 * r["cluster_hit_rate"], r["latency_seconds"]["p99"]))
' "$WORK/BENCH_cluster.json"

# --- Metrics artifacts -------------------------------------------------
curl -sf "http://$N1/metrics" >"$WORK/node1_metrics.txt"
curl -sf "http://$GATE/metrics" >"$WORK/gateway_metrics.txt"
grep -q "gpujoule_cluster_peer_hits" "$WORK/node1_metrics.txt"
grep -q "gpujoule_cluster_replica_pending" "$WORK/node1_metrics.txt"
grep -q "gpujoule_gateway_fanout_latency_p99_seconds" "$WORK/gateway_metrics.txt"
grep -q "gpujoule_cluster_peers_unhealthy" "$WORK/gateway_metrics.txt"
echo "cluster metrics captured"

kill -TERM "$P1" "$P3" "$PGW" 2>/dev/null || true
wait "$P1" "$P3" "$PGW" 2>/dev/null || true
trap - EXIT
echo "cluster smoke OK (artifacts in $WORK)"
