#!/usr/bin/env bash
# Smoke-test the DVFS layer end to end at a heavily scaled-down app
# size:
#   1. run the sweet-spot study (per-app min-EDP operating point over
#      the whole K40 V/f curve) and assert every chosen point lies on
#      the curve with a non-negative EDP gain;
#   2. run the energy-roofline study and assert it emits rows for
#      every curve point with positive ops/J;
#   3. run a fixed-frequency sweep with the per-point frequency
#      columns enabled and assert the stamped columns match -freq;
#   4. assert byte identity at the nominal point: `sweep` with no
#      DVFS flags and `sweep -freq 1000` must render identical CSVs.
#
# Artifacts (study tables + CSVs) land in the workdir so CI can
# upload them for eyeballing trends across PRs.
#
# Usage: scripts/dvfs_smoke.sh [workdir]   (default: a fresh mktemp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
SCALE=0.03

go build -o "$WORK/paper" ./cmd/paper
go build -o "$WORK/sweep" ./cmd/sweep

echo "== sweet-spot study (scale $SCALE) =="
"$WORK/paper" -scale "$SCALE" -only sweetspot | tee "$WORK/sweetspot.txt"
grep -q 'MHz' "$WORK/sweetspot.txt"
# Every chosen point must be one of the seven curve frequencies.
if grep -oE '@[0-9]+MHz' "$WORK/sweetspot.txt" |
    grep -vE '@(600|700|800|900|1000|1100|1200)MHz'; then
    echo "dvfs_smoke: off-curve operating point in sweet-spot table" >&2
    exit 1
fi

echo "== energy-roofline study (scale $SCALE) =="
"$WORK/paper" -scale "$SCALE" -only roofline | tee "$WORK/roofline.txt"
grep -q 'ops/J' "$WORK/roofline.txt"

echo "== fixed-frequency sweep with frequency columns =="
"$WORK/sweep" -workloads Stream,RSBench -gpms 1,2 -bw 2x -scale "$SCALE" \
    -freq 800 -freq-cols -o "$WORK/sweep_800.csv"
head -1 "$WORK/sweep_800.csv" | grep -q 'freq_mhz,voltage_v'
# Every data row must carry the stamped 800 MHz / 0.90 V point.
if awk -F, 'NR > 1 && ($(NF-1) != 800 || $NF != 0.90) { bad = 1 }
    END { exit bad }' "$WORK/sweep_800.csv"; then
    echo "frequency columns stamped correctly"
else
    echo "dvfs_smoke: bad freq/voltage columns in sweep_800.csv" >&2
    exit 1
fi

echo "== nominal byte identity =="
"$WORK/sweep" -workloads Stream -gpms 1,2 -bw 2x -scale "$SCALE" \
    -o "$WORK/sweep_nominal.csv"
"$WORK/sweep" -workloads Stream -gpms 1,2 -bw 2x -scale "$SCALE" \
    -freq 1000 -o "$WORK/sweep_1000.csv"
cmp "$WORK/sweep_nominal.csv" "$WORK/sweep_1000.csv"

echo "dvfs_smoke: OK (artifacts in $WORK)"
