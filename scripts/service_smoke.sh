#!/usr/bin/env bash
# Smoke-test the gpujouled service end to end:
#   1. build and start the daemon (two weighted tenants configured)
#      with a fresh cache directory;
#   2. submit a tiny sweep, wait it out, fetch the result document;
#   3. submit the identical sweep again and assert the second pass is
#      answered 100% from the cache (zero simulations submitted) with a
#      byte-identical result document;
#   4. run cmd/sweep both locally and through -server and assert the
#      CSVs are byte-identical;
#   5. run two concurrent tenants with different weights plus one SSE
#      streaming client, assert the stream terminates with the same
#      digest as the polled result, and that a -stream sweep racing a
#      higher-priority tenant still renders a byte-identical CSV;
#   6. scrape /metrics (and the per-tenant series) into artifacts.
#
# Usage: scripts/service_smoke.sh [workdir]   (default: a fresh mktemp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
ADDR="127.0.0.1:18344"
SPEC='{"workloads":"Stream,Kmeans","scale":0.05,"gpms":"1,2","bw":"1x,2x"}'

go build -o "$WORK/gpujouled" ./cmd/gpujouled
go build -o "$WORK/sweep" ./cmd/sweep
"$WORK/gpujouled" -version

"$WORK/gpujouled" -addr "$ADDR" -cache "$WORK/cache" -tenants alice=3,bob=1 >"$WORK/daemon.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
    curl -sf "http://$ADDR/v1/version" >/dev/null && break
    sleep 0.2
done
curl -sf "http://$ADDR/v1/version"; echo

submit_and_wait() {
    local id
    id=$(curl -sf "http://$ADDR/v1/jobs" -d "$SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
    for _ in $(seq 300); do
        state=$(curl -sf "http://$ADDR/v1/jobs/$id" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
        [ "$state" = done ] && { echo "$id"; return 0; }
        case "$state" in failed|cancelled) echo "job $id $state" >&2; return 1 ;; esac
        sleep 0.2
    done
    echo "job $id never finished" >&2
    return 1
}

COLD=$(submit_and_wait)
WARM=$(submit_and_wait)
curl -sf "http://$ADDR/v1/jobs/$COLD/result" >"$WORK/cold.json"
curl -sf "http://$ADDR/v1/jobs/$WARM/result" >"$WORK/warm.json"
cmp "$WORK/cold.json" "$WORK/warm.json"
echo "result documents byte-identical across cold/warm passes"

# The warm pass must be 100% cache hits: nothing submitted to the engine.
curl -sf "http://$ADDR/v1/jobs/$WARM" | python3 -c '
import json, sys
j = json.load(sys.stdin)
assert j["points"] > 0, j
assert j["cache_hits"] == j["points"], f"warm pass not fully cached: {j}"
assert j["submitted"] == 0, f"warm pass re-simulated: {j}"
print("warm pass: %d/%d cache hits, 0 submitted" % (j["cache_hits"], j["points"]))
'

# A local sweep and a -server sweep of the same grid render identical CSVs.
"$WORK/sweep" -workloads Stream,Kmeans -scale 0.05 -gpms 1,2 -bw 1x,2x -o "$WORK/local.csv"
"$WORK/sweep" -workloads Stream,Kmeans -scale 0.05 -gpms 1,2 -bw 1x,2x -server "$ADDR" -o "$WORK/remote.csv"
cmp "$WORK/local.csv" "$WORK/remote.csv"
echo "local and -server CSVs byte-identical"

# --- Multi-tenant scheduling + streaming -------------------------------
# Two tenants with different weights submit concurrently (distinct
# grids, so both backlogs are real work), while an SSE client streams
# one of the jobs: the stream must terminate with a "done" event whose
# digest equals the sha256 of the polled result document.
ALICE_SPEC='{"workloads":"Stream","scale":0.06,"gpms":"1,2,4","bw":"1x"}'
BOB_SPEC='{"workloads":"Kmeans","scale":0.06,"gpms":"1,2,4","bw":"1x"}'
AID=$(curl -sf "http://$ADDR/v1/jobs" -H 'X-Tenant: alice' -d "$ALICE_SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
BID=$(curl -sf "http://$ADDR/v1/jobs" -H 'X-Tenant: bob' -d "$BOB_SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

# The SSE stream blocks until the terminal event, then the handler
# closes it — so this curl doubles as the wait.
curl -sfN --max-time 120 "http://$ADDR/v1/jobs/$AID/events" >"$WORK/alice_events.txt"
STREAM_DIGEST=$(python3 -c '
import json, sys
digest = None
for line in open(sys.argv[1]):
    if line.startswith("data: "):
        ev = json.loads(line[len("data: "):])
        if ev["kind"] == "done":
            assert ev["state"] == "done", ev
            digest = ev["digest"]
assert digest, "stream ended without a done digest"
print(digest)
' "$WORK/alice_events.txt")
curl -sf "http://$ADDR/v1/jobs/$AID/result" >"$WORK/alice_result.json"
POLLED_DIGEST=$(python3 -c 'import hashlib,sys; print(hashlib.sha256(open(sys.argv[1],"rb").read()).hexdigest())' "$WORK/alice_result.json")
[ "$STREAM_DIGEST" = "$POLLED_DIGEST" ] || { echo "SSE digest $STREAM_DIGEST != polled $POLLED_DIGEST" >&2; exit 1; }
echo "SSE stream digest matches polled result"

for _ in $(seq 300); do
    state=$(curl -sf "http://$ADDR/v1/jobs/$BID" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    [ "$state" = done ] && break
    sleep 0.2
done
[ "$state" = done ] || { echo "bob job never finished ($state)" >&2; exit 1; }

# A streamed sweep racing a higher-priority tenant still renders a CSV
# byte-identical to local execution: preemption reorders scheduling,
# never bytes.
"$WORK/sweep" -workloads Stream,Kmeans -scale 0.07 -gpms 1,2 -bw 1x,2x -o "$WORK/local_stream.csv"
"$WORK/sweep" -workloads Stream,Kmeans -scale 0.07 -gpms 1,2 -bw 1x,2x \
    -server "$ADDR" -stream -tenant bob -o "$WORK/remote_stream.csv" &
STREAMER=$!
sleep 0.3
curl -sf "http://$ADDR/v1/jobs" -H 'X-Tenant: alice' \
    -d '{"workloads":"MiniAMR","scale":0.06,"gpms":"1,2","bw":"1x","priority":10}' >/dev/null
wait "$STREAMER"
cmp "$WORK/local_stream.csv" "$WORK/remote_stream.csv"
echo "streamed CSV byte-identical to local run under priority contention"

curl -sf "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q "gpujoule_result_cache_hits" "$WORK/metrics.txt"
grep -q "gpujoule_queue_depth" "$WORK/metrics.txt"
grep -q "gpujoule_sched_preemptions_total" "$WORK/metrics.txt"

# Per-tenant scheduler series go to their own artifact: both tenants
# present, with the configured weights.
grep "^gpujoule_tenant_\|^# .*gpujoule_tenant_" "$WORK/metrics.txt" >"$WORK/tenant_metrics.txt"
grep -q 'gpujoule_tenant_weight{tenant="alice"} 3' "$WORK/tenant_metrics.txt"
grep -q 'gpujoule_tenant_weight{tenant="bob"} 1' "$WORK/tenant_metrics.txt"
grep -q 'gpujoule_tenant_dispatched_points_total{tenant="alice"}' "$WORK/tenant_metrics.txt"
echo "per-tenant metrics captured"

# Graceful drain: SIGTERM must stop the daemon cleanly.
kill -TERM "$DAEMON"
wait "$DAEMON"
trap - EXIT
echo "service smoke OK (artifacts in $WORK)"
