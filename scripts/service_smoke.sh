#!/usr/bin/env bash
# Smoke-test the gpujouled service end to end:
#   1. build and start the daemon with a fresh cache directory;
#   2. submit a tiny sweep, wait it out, fetch the result document;
#   3. submit the identical sweep again and assert the second pass is
#      answered 100% from the cache (zero simulations submitted) with a
#      byte-identical result document;
#   4. run cmd/sweep both locally and through -server and assert the
#      CSVs are byte-identical;
#   5. scrape /metrics into an artifact for upload.
#
# Usage: scripts/service_smoke.sh [workdir]   (default: a fresh mktemp dir)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
ADDR="127.0.0.1:18344"
SPEC='{"workloads":"Stream,Kmeans","scale":0.05,"gpms":"1,2","bw":"1x,2x"}'

go build -o "$WORK/gpujouled" ./cmd/gpujouled
go build -o "$WORK/sweep" ./cmd/sweep
"$WORK/gpujouled" -version

"$WORK/gpujouled" -addr "$ADDR" -cache "$WORK/cache" >"$WORK/daemon.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
    curl -sf "http://$ADDR/v1/version" >/dev/null && break
    sleep 0.2
done
curl -sf "http://$ADDR/v1/version"; echo

submit_and_wait() {
    local id
    id=$(curl -sf "http://$ADDR/v1/jobs" -d "$SPEC" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
    for _ in $(seq 300); do
        state=$(curl -sf "http://$ADDR/v1/jobs/$id" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
        [ "$state" = done ] && { echo "$id"; return 0; }
        case "$state" in failed|cancelled) echo "job $id $state" >&2; return 1 ;; esac
        sleep 0.2
    done
    echo "job $id never finished" >&2
    return 1
}

COLD=$(submit_and_wait)
WARM=$(submit_and_wait)
curl -sf "http://$ADDR/v1/jobs/$COLD/result" >"$WORK/cold.json"
curl -sf "http://$ADDR/v1/jobs/$WARM/result" >"$WORK/warm.json"
cmp "$WORK/cold.json" "$WORK/warm.json"
echo "result documents byte-identical across cold/warm passes"

# The warm pass must be 100% cache hits: nothing submitted to the engine.
curl -sf "http://$ADDR/v1/jobs/$WARM" | python3 -c '
import json, sys
j = json.load(sys.stdin)
assert j["points"] > 0, j
assert j["cache_hits"] == j["points"], f"warm pass not fully cached: {j}"
assert j["submitted"] == 0, f"warm pass re-simulated: {j}"
print("warm pass: %d/%d cache hits, 0 submitted" % (j["cache_hits"], j["points"]))
'

# A local sweep and a -server sweep of the same grid render identical CSVs.
"$WORK/sweep" -workloads Stream,Kmeans -scale 0.05 -gpms 1,2 -bw 1x,2x -o "$WORK/local.csv"
"$WORK/sweep" -workloads Stream,Kmeans -scale 0.05 -gpms 1,2 -bw 1x,2x -server "$ADDR" -o "$WORK/remote.csv"
cmp "$WORK/local.csv" "$WORK/remote.csv"
echo "local and -server CSVs byte-identical"

curl -sf "http://$ADDR/metrics" >"$WORK/metrics.txt"
grep -q "gpujoule_result_cache_hits" "$WORK/metrics.txt"
grep -q "gpujoule_queue_depth" "$WORK/metrics.txt"

# Graceful drain: SIGTERM must stop the daemon cleanly.
kill -TERM "$DAEMON"
wait "$DAEMON"
trap - EXIT
echo "service smoke OK (artifacts in $WORK)"
