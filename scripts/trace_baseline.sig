# Trace-signature baseline: tracelens sig over the fig2 slice
# at -scale 0.05. Regenerate with scripts/trace_regress.sh
# -update after an intentional behavior change.
# gpujoule trace signature v1
run	BPROP on 1-GPM	6	d9faa3eae2c8498b	175586
cycle	2	3	5ff37710fe84e7d7	bprop-backward|bprop-forward
phase	0	compute-bound	6	175586
run	BPROP on 16-GPM/1x-BW/ring/on-board	6	d9faa3eae2c8498b	63692
cycle	2	3	5ff37710fe84e7d7	bprop-backward|bprop-forward
phase	0	memory-bound	6	63692
run	BPROP on 2-GPM/1x-BW/ring/on-board	6	d9faa3eae2c8498b	101522.75
cycle	2	3	5ff37710fe84e7d7	bprop-backward|bprop-forward
phase	0	compute-bound	6	101522.75
run	BPROP on 32-GPM/1x-BW/ring/on-board	6	d9faa3eae2c8498b	62948
cycle	2	3	5ff37710fe84e7d7	bprop-backward|bprop-forward
phase	0	memory-bound	6	62948
run	BPROP on 4-GPM/1x-BW/ring/on-board	6	d9faa3eae2c8498b	67987
cycle	2	3	5ff37710fe84e7d7	bprop-backward|bprop-forward
phase	0	compute-bound	6	67987
run	BPROP on 8-GPM/1x-BW/ring/on-board	6	d9faa3eae2c8498b	64775.99999999999
cycle	2	3	5ff37710fe84e7d7	bprop-backward|bprop-forward
phase	0	memory-bound	6	64775.99999999999
run	BTREE on 1-GPM	1	b876f88a4ee3ddb1	45503
phase	0	compute-bound	1	45503
run	BTREE on 16-GPM/1x-BW/ring/on-board	1	b876f88a4ee3ddb1	20365.25
phase	0	memory-bound	1	20365.25
run	BTREE on 2-GPM/1x-BW/ring/on-board	1	b876f88a4ee3ddb1	28516.5
phase	0	memory-bound	1	28516.5
run	BTREE on 32-GPM/1x-BW/ring/on-board	1	b876f88a4ee3ddb1	24743.5
phase	0	memory-bound	1	24743.5
run	BTREE on 4-GPM/1x-BW/ring/on-board	1	b876f88a4ee3ddb1	21216.25
phase	0	memory-bound	1	21216.25
run	BTREE on 8-GPM/1x-BW/ring/on-board	1	b876f88a4ee3ddb1	20090.5
phase	0	memory-bound	1	20090.5
run	CoMD on 1-GPM	2	11a3e0fef120c2e5	281488
cycle	1	2	6d64a53bd05bf805	comd-force
phase	0	compute-bound	2	281488
run	CoMD on 16-GPM/1x-BW/ring/on-board	2	11a3e0fef120c2e5	74370
cycle	1	2	6d64a53bd05bf805	comd-force
phase	0	memory-bound	2	74370
run	CoMD on 2-GPM/1x-BW/ring/on-board	2	11a3e0fef120c2e5	143294
cycle	1	2	6d64a53bd05bf805	comd-force
phase	0	compute-bound	2	143294
run	CoMD on 32-GPM/1x-BW/ring/on-board	2	11a3e0fef120c2e5	74560
cycle	1	2	6d64a53bd05bf805	comd-force
phase	0	memory-bound	2	74560
run	CoMD on 4-GPM/1x-BW/ring/on-board	2	11a3e0fef120c2e5	74226
cycle	1	2	6d64a53bd05bf805	comd-force
phase	0	compute-bound	2	74226
run	CoMD on 8-GPM/1x-BW/ring/on-board	2	11a3e0fef120c2e5	74236
cycle	1	2	6d64a53bd05bf805	comd-force
phase	0	memory-bound	2	74236
run	Hotspot on 1-GPM	2	12fa98b80ba80cdf	50166.75
cycle	1	2	fd552088b242c2fa	hotspot-step
phase	0	compute-bound	2	50166.75
run	Hotspot on 16-GPM/1x-BW/ring/on-board	2	12fa98b80ba80cdf	17451.25
cycle	1	2	fd552088b242c2fa	hotspot-step
phase	0	memory-bound	2	17451.25
run	Hotspot on 2-GPM/1x-BW/ring/on-board	2	12fa98b80ba80cdf	31082.749999999996
cycle	1	2	fd552088b242c2fa	hotspot-step
phase	0	compute-bound	2	31082.749999999996
run	Hotspot on 32-GPM/1x-BW/ring/on-board	2	12fa98b80ba80cdf	17516.75
cycle	1	2	fd552088b242c2fa	hotspot-step
phase	0	memory-bound	2	17516.75
run	Hotspot on 4-GPM/1x-BW/ring/on-board	2	12fa98b80ba80cdf	18648.5
cycle	1	2	fd552088b242c2fa	hotspot-step
phase	0	compute-bound	2	18648.5
run	Hotspot on 8-GPM/1x-BW/ring/on-board	2	12fa98b80ba80cdf	17737.5
cycle	1	2	fd552088b242c2fa	hotspot-step
phase	0	memory-bound	2	17737.5
run	Kmeans on 1-GPM	2	dafac03076e23eb1	46990.5
cycle	1	2	19a61d92ef72d50f	kmeans-assign
phase	0	compute-bound	2	46990.5
run	Kmeans on 16-GPM/1x-BW/ring/on-board	2	dafac03076e23eb1	15216.750000000002
cycle	1	2	19a61d92ef72d50f	kmeans-assign
phase	0	memory-bound	2	15216.750000000002
run	Kmeans on 2-GPM/1x-BW/ring/on-board	2	dafac03076e23eb1	25052.500000000004
cycle	1	2	19a61d92ef72d50f	kmeans-assign
phase	0	compute-bound	2	25052.500000000004
run	Kmeans on 32-GPM/1x-BW/ring/on-board	2	dafac03076e23eb1	15433.75
cycle	1	2	19a61d92ef72d50f	kmeans-assign
phase	0	memory-bound	2	15433.75
run	Kmeans on 4-GPM/1x-BW/ring/on-board	2	dafac03076e23eb1	17955.750000000004
cycle	1	2	19a61d92ef72d50f	kmeans-assign
phase	0	memory-bound	2	17955.750000000004
run	Kmeans on 8-GPM/1x-BW/ring/on-board	2	dafac03076e23eb1	16480.75
cycle	1	2	19a61d92ef72d50f	kmeans-assign
phase	0	memory-bound	2	16480.75
run	Lulesh-150 on 1-GPM	2	b120b72860fc1f85	97855.25000000001
cycle	1	2	01274c7b6c93ce1e	Lulesh-150-calc
phase	0	compute-bound	2	97855.25000000001
run	Lulesh-150 on 16-GPM/1x-BW/ring/on-board	2	b120b72860fc1f85	41793.00000000001
cycle	1	2	01274c7b6c93ce1e	Lulesh-150-calc
phase	0	memory-bound	2	41793.00000000001
run	Lulesh-150 on 2-GPM/1x-BW/ring/on-board	2	b120b72860fc1f85	61972.75000000001
cycle	1	2	01274c7b6c93ce1e	Lulesh-150-calc
phase	0	compute-bound	2	61972.75000000001
run	Lulesh-150 on 32-GPM/1x-BW/ring/on-board	2	b120b72860fc1f85	47446.25
cycle	1	2	01274c7b6c93ce1e	Lulesh-150-calc
phase	0	memory-bound	2	47446.25
run	Lulesh-150 on 4-GPM/1x-BW/ring/on-board	2	b120b72860fc1f85	43043.00000000001
cycle	1	2	01274c7b6c93ce1e	Lulesh-150-calc
phase	0	memory-bound	2	43043.00000000001
run	Lulesh-150 on 8-GPM/1x-BW/ring/on-board	2	b120b72860fc1f85	40656.5
cycle	1	2	01274c7b6c93ce1e	Lulesh-150-calc
phase	0	memory-bound	2	40656.5
run	Lulesh-190 on 1-GPM	2	4d5aee1d10e5b87d	149217.50000000003
cycle	1	2	6322392821e8884a	Lulesh-190-calc
phase	0	compute-bound	2	149217.50000000003
run	Lulesh-190 on 16-GPM/1x-BW/ring/on-board	2	4d5aee1d10e5b87d	56513.5
cycle	1	2	6322392821e8884a	Lulesh-190-calc
phase	0	memory-bound	2	56513.5
run	Lulesh-190 on 2-GPM/1x-BW/ring/on-board	2	4d5aee1d10e5b87d	93443.00000000001
cycle	1	2	6322392821e8884a	Lulesh-190-calc
phase	0	memory-bound	1	43904
phase	1	compute-bound	1	44539.000000000015
run	Lulesh-190 on 32-GPM/1x-BW/ring/on-board	2	4d5aee1d10e5b87d	59326
cycle	1	2	6322392821e8884a	Lulesh-190-calc
phase	0	memory-bound	2	59326
run	Lulesh-190 on 4-GPM/1x-BW/ring/on-board	2	4d5aee1d10e5b87d	70835.74999999999
cycle	1	2	6322392821e8884a	Lulesh-190-calc
phase	0	memory-bound	2	70835.74999999999
run	Lulesh-190 on 8-GPM/1x-BW/ring/on-board	2	4d5aee1d10e5b87d	54756.75
cycle	1	2	6322392821e8884a	Lulesh-190-calc
phase	0	memory-bound	2	54756.75
run	MiniAMR on 1-GPM	8	d2deeb8e01252555	79295
cycle	1	8	8380ab59560c75fc	miniamr-sweep
phase	0	memory-bound	1	7273.000000000001
phase	1	compute-bound	7	67022
run	MiniAMR on 16-GPM/1x-BW/ring/on-board	8	d2deeb8e01252555	62324
cycle	1	8	8380ab59560c75fc	miniamr-sweep
phase	0	memory-bound	8	62324
run	MiniAMR on 2-GPM/1x-BW/ring/on-board	8	d2deeb8e01252555	69733.5
cycle	1	8	8380ab59560c75fc	miniamr-sweep
phase	0	memory-bound	8	69733.5
run	MiniAMR on 32-GPM/1x-BW/ring/on-board	8	d2deeb8e01252555	68958.5
cycle	1	8	8380ab59560c75fc	miniamr-sweep
phase	0	memory-bound	8	68958.5
run	MiniAMR on 4-GPM/1x-BW/ring/on-board	8	d2deeb8e01252555	63425.99999999999
cycle	1	8	8380ab59560c75fc	miniamr-sweep
phase	0	memory-bound	8	63425.99999999999
run	MiniAMR on 8-GPM/1x-BW/ring/on-board	8	d2deeb8e01252555	62716
cycle	1	8	8380ab59560c75fc	miniamr-sweep
phase	0	memory-bound	8	62716
run	Nekbone-12 on 1-GPM	2	6f345b4107493ea5	89653.25
cycle	1	2	1f04054f7710cd42	Nekbone-12-ax
phase	0	compute-bound	2	89653.25
run	Nekbone-12 on 16-GPM/1x-BW/ring/on-board	2	6f345b4107493ea5	32030
cycle	1	2	1f04054f7710cd42	Nekbone-12-ax
phase	0	memory-bound	2	32030
run	Nekbone-12 on 2-GPM/1x-BW/ring/on-board	2	6f345b4107493ea5	53291
cycle	1	2	1f04054f7710cd42	Nekbone-12-ax
phase	0	compute-bound	2	53291
run	Nekbone-12 on 32-GPM/1x-BW/ring/on-board	2	6f345b4107493ea5	34225
cycle	1	2	1f04054f7710cd42	Nekbone-12-ax
phase	0	memory-bound	2	34225
run	Nekbone-12 on 4-GPM/1x-BW/ring/on-board	2	6f345b4107493ea5	30536
cycle	1	2	1f04054f7710cd42	Nekbone-12-ax
phase	0	compute-bound	2	30536
run	Nekbone-12 on 8-GPM/1x-BW/ring/on-board	2	6f345b4107493ea5	30775.000000000004
cycle	1	2	1f04054f7710cd42	Nekbone-12-ax
phase	0	memory-bound	2	30775.000000000004
run	Nekbone-18 on 1-GPM	2	0d387291ac9aa2b1	90200.25000000001
cycle	1	2	edb3cc4aba5f5eb0	Nekbone-18-ax
phase	0	compute-bound	2	90200.25000000001
run	Nekbone-18 on 16-GPM/1x-BW/ring/on-board	2	0d387291ac9aa2b1	32155
cycle	1	2	edb3cc4aba5f5eb0	Nekbone-18-ax
phase	0	memory-bound	2	32155
run	Nekbone-18 on 2-GPM/1x-BW/ring/on-board	2	0d387291ac9aa2b1	53383
cycle	1	2	edb3cc4aba5f5eb0	Nekbone-18-ax
phase	0	compute-bound	2	53383
run	Nekbone-18 on 32-GPM/1x-BW/ring/on-board	2	0d387291ac9aa2b1	34258
cycle	1	2	edb3cc4aba5f5eb0	Nekbone-18-ax
phase	0	memory-bound	2	34258
run	Nekbone-18 on 4-GPM/1x-BW/ring/on-board	2	0d387291ac9aa2b1	30555
cycle	1	2	edb3cc4aba5f5eb0	Nekbone-18-ax
phase	0	compute-bound	2	30555
run	Nekbone-18 on 8-GPM/1x-BW/ring/on-board	2	0d387291ac9aa2b1	30837
cycle	1	2	edb3cc4aba5f5eb0	Nekbone-18-ax
phase	0	memory-bound	2	30837
run	PathF on 1-GPM	3	67aa6716eab853ae	26778.25
cycle	1	3	8ead86ef87f9d15e	pathf-row
phase	0	compute-bound	3	26778.25
run	PathF on 16-GPM/1x-BW/ring/on-board	3	67aa6716eab853ae	18759.75
cycle	1	3	8ead86ef87f9d15e	pathf-row
phase	0	memory-bound	3	18759.75
run	PathF on 2-GPM/1x-BW/ring/on-board	3	67aa6716eab853ae	19315.25
cycle	1	3	8ead86ef87f9d15e	pathf-row
phase	0	memory-bound	1	3445.25
phase	1	compute-bound	2	10870
run	PathF on 32-GPM/1x-BW/ring/on-board	3	67aa6716eab853ae	19541.5
cycle	1	3	8ead86ef87f9d15e	pathf-row
phase	0	memory-bound	3	19541.5
run	PathF on 4-GPM/1x-BW/ring/on-board	3	67aa6716eab853ae	18981.25
cycle	1	3	8ead86ef87f9d15e	pathf-row
phase	0	memory-bound	3	18981.25
run	PathF on 8-GPM/1x-BW/ring/on-board	3	67aa6716eab853ae	18804.25
cycle	1	3	8ead86ef87f9d15e	pathf-row
phase	0	memory-bound	3	18804.25
run	RSBench on 1-GPM	1	923af45d35f39f82	151556
phase	0	compute-bound	1	151556
run	RSBench on 16-GPM/1x-BW/ring/on-board	1	923af45d35f39f82	38004
phase	0	memory-bound	1	38004
run	RSBench on 2-GPM/1x-BW/ring/on-board	1	923af45d35f39f82	75780
phase	0	compute-bound	1	75780
run	RSBench on 32-GPM/1x-BW/ring/on-board	1	923af45d35f39f82	38063
phase	0	memory-bound	1	38063
run	RSBench on 4-GPM/1x-BW/ring/on-board	1	923af45d35f39f82	37926
phase	0	compute-bound	1	37926
run	RSBench on 8-GPM/1x-BW/ring/on-board	1	923af45d35f39f82	37928
phase	0	memory-bound	1	37928
run	Srad-v2 on 1-GPM	2	4f6f9ce145339c5d	41945.75000000001
cycle	1	2	2802151d2ebead57	sradv2-diffuse
phase	0	memory-bound	2	41945.75000000001
run	Srad-v2 on 16-GPM/1x-BW/ring/on-board	2	4f6f9ce145339c5d	15769.5
cycle	1	2	2802151d2ebead57	sradv2-diffuse
phase	0	memory-bound	2	15769.5
run	Srad-v2 on 2-GPM/1x-BW/ring/on-board	2	4f6f9ce145339c5d	30595.5
cycle	1	2	2802151d2ebead57	sradv2-diffuse
phase	0	memory-bound	2	30595.5
run	Srad-v2 on 32-GPM/1x-BW/ring/on-board	2	4f6f9ce145339c5d	19239
cycle	1	2	2802151d2ebead57	sradv2-diffuse
phase	0	memory-bound	2	19239
run	Srad-v2 on 4-GPM/1x-BW/ring/on-board	2	4f6f9ce145339c5d	18001.25
cycle	1	2	2802151d2ebead57	sradv2-diffuse
phase	0	memory-bound	2	18001.25
run	Srad-v2 on 8-GPM/1x-BW/ring/on-board	2	4f6f9ce145339c5d	15965.75
cycle	1	2	2802151d2ebead57	sradv2-diffuse
phase	0	memory-bound	2	15965.75
run	Stream on 1-GPM	2	0cc3350df8371e5d	123888.25
cycle	1	2	afbddd349f735019	stream-triad
phase	0	memory-bound	2	123888.25
run	Stream on 16-GPM/1x-BW/ring/on-board	2	0cc3350df8371e5d	16954.25
cycle	1	2	afbddd349f735019	stream-triad
phase	0	memory-bound	2	16954.25
run	Stream on 2-GPM/1x-BW/ring/on-board	2	0cc3350df8371e5d	65759
cycle	1	2	afbddd349f735019	stream-triad
phase	0	memory-bound	2	65759
run	Stream on 32-GPM/1x-BW/ring/on-board	2	0cc3350df8371e5d	16300.249999999998
cycle	1	2	afbddd349f735019	stream-triad
phase	0	memory-bound	2	16300.249999999998
run	Stream on 4-GPM/1x-BW/ring/on-board	2	0cc3350df8371e5d	37878.25
cycle	1	2	afbddd349f735019	stream-triad
phase	0	memory-bound	2	37878.25
run	Stream on 8-GPM/1x-BW/ring/on-board	2	0cc3350df8371e5d	21247.500000000004
cycle	1	2	afbddd349f735019	stream-triad
phase	0	memory-bound	2	21247.500000000004
