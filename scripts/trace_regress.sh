#!/usr/bin/env bash
# trace_regress.sh — trace-signature regression check.
#
# Runs a small paper-report slice (fig2 at -scale 0.05, 84 traced
# points, a few seconds) with -trace, reduces the trace to its
# structural signature with `tracelens sig` (launch counts, sequence
# hashes, detected kernel cycles, phase separation, exact cycle
# totals), and diffs it against the checked-in baseline
# scripts/trace_baseline.sig.
#
# The simulator is deterministic down to the byte across machines and
# worker counts, so this diff is exact: ANY divergence means simulated
# behavior changed — a launch was added or dropped, a kernel got
# faster or slower, a phase flipped regime. That is the point: perf
# work is invisible to unit tests but never invisible here.
#
# Usage:
#   scripts/trace_regress.sh            # run the slice, diff the signature
#   scripts/trace_regress.sh -update    # rewrite the baseline (after an
#                                       # intentional behavior change)
#
# Exit status: 0 on match, 1 on divergence (CI wires it warn-only with
# `|| true` alongside bench_regress.sh; locally it is a hard check).
set -eu

cd "$(dirname "$0")/.."

BASELINE=scripts/trace_baseline.sig
SLICE=${TRACE_REGRESS_SLICE:-fig2}
SCALE=${TRACE_REGRESS_SCALE:-0.05}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir" ./cmd/paper ./cmd/tracelens

"$workdir/paper" -only "$SLICE" -scale "$SCALE" \
  -trace "$workdir/slice.trace.json.gz" > /dev/null
"$workdir/tracelens" sig "$workdir/slice.trace.json.gz" -o "$workdir/slice.sig"

if [ "${1:-}" = "-update" ]; then
  {
    echo "# Trace-signature baseline: tracelens sig over the $SLICE slice"
    echo "# at -scale $SCALE. Regenerate with scripts/trace_regress.sh"
    echo "# -update after an intentional behavior change."
    cat "$workdir/slice.sig"
  } > "$BASELINE"
  echo "baseline rewritten: $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "trace_regress: no baseline at $BASELINE (run scripts/trace_regress.sh -update)" >&2
  exit 1
fi

# Strip baseline comment lines before diffing; the signature itself
# never contains '#' beyond its own header line, which both sides have.
if diff -u <(grep -v '^#' "$BASELINE") <(grep -v '^#' "$workdir/slice.sig"); then
  echo "trace_regress: signature matches baseline ($SLICE at scale $SCALE)"
else
  echo "trace_regress: TRACE SIGNATURE DIVERGED from $BASELINE" >&2
  echo "trace_regress: if the change is intentional, rerun with -update" >&2
  exit 1
fi
